"""Property-based tests: the paper's metric theorems as hypothesis invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.partial_ranking import PartialRanking
from repro.core.refine import full_refinements, star
from repro.metrics.footrule import footrule, footrule_full
from repro.metrics.hausdorff import footrule_hausdorff, kendall_hausdorff_counts
from repro.metrics.kendall import kendall, kendall_full, pair_counts
from tests.conftest import bucket_order_pairs, bucket_order_triples, bucket_orders, full_rankings


class TestMetricAxiomsProperty:
    @given(bucket_order_pairs())
    def test_all_four_metrics_are_symmetric(self, pair):
        sigma, tau = pair
        assert kendall(sigma, tau) == pytest.approx(kendall(tau, sigma))
        assert footrule(sigma, tau) == pytest.approx(footrule(tau, sigma))
        assert kendall_hausdorff_counts(sigma, tau) == kendall_hausdorff_counts(tau, sigma)
        assert footrule_hausdorff(sigma, tau) == pytest.approx(footrule_hausdorff(tau, sigma))

    @given(bucket_orders())
    def test_all_four_metrics_are_regular_at_zero(self, sigma):
        assert kendall(sigma, sigma) == 0
        assert footrule(sigma, sigma) == 0
        assert kendall_hausdorff_counts(sigma, sigma) == 0
        assert footrule_hausdorff(sigma, sigma) == 0

    @given(bucket_order_pairs())
    def test_distinct_rankings_have_positive_distance(self, pair):
        sigma, tau = pair
        if sigma != tau:
            assert kendall(sigma, tau) > 0
            assert footrule(sigma, tau) > 0
            assert kendall_hausdorff_counts(sigma, tau) > 0
            assert footrule_hausdorff(sigma, tau) > 0

    @settings(max_examples=60)
    @given(bucket_order_triples())
    def test_triangle_inequality_for_all_four(self, triple):
        x, y, z = triple
        assert kendall(x, z) <= kendall(x, y) + kendall(y, z) + 1e-9
        assert footrule(x, z) <= footrule(x, y) + footrule(y, z) + 1e-9
        assert kendall_hausdorff_counts(x, z) <= (
            kendall_hausdorff_counts(x, y) + kendall_hausdorff_counts(y, z)
        )
        assert footrule_hausdorff(x, z) <= (
            footrule_hausdorff(x, y) + footrule_hausdorff(y, z) + 1e-9
        )


class TestEquivalenceTheorems:
    @given(bucket_order_pairs())
    def test_eq4_hausdorff_diaconis_graham(self, pair):
        sigma, tau = pair
        kh = kendall_hausdorff_counts(sigma, tau)
        fh = footrule_hausdorff(sigma, tau)
        assert kh <= fh + 1e-9
        assert fh <= 2 * kh + 1e-9

    @given(bucket_order_pairs())
    def test_eq5_profile_diaconis_graham(self, pair):
        sigma, tau = pair
        kp = kendall(sigma, tau)
        fp = footrule(sigma, tau)
        assert kp <= fp + 1e-9
        assert fp <= 2 * kp + 1e-9

    @given(bucket_order_pairs())
    def test_eq6_kprof_vs_khaus(self, pair):
        sigma, tau = pair
        kp = kendall(sigma, tau)
        kh = kendall_hausdorff_counts(sigma, tau)
        assert kp <= kh + 1e-9
        assert kh <= 2 * kp + 1e-9

    @given(full_rankings(max_size=7))
    def test_eq1_on_full_rankings(self, sigma):
        tau = sigma.reverse()
        k = kendall_full(sigma, tau)
        f = footrule_full(sigma, tau)
        assert k <= f <= 2 * k or (k == 0 and f == 0)


class TestHausdorffSemantics:
    @settings(max_examples=30)
    @given(bucket_order_pairs(max_size=5))
    def test_hausdorff_dominates_every_point_distance(self, pair):
        """Every refinement of sigma is within F_Haus of SOME refinement of tau."""
        sigma, tau = pair
        fh = footrule_hausdorff(sigma, tau)
        for gamma1 in full_refinements(sigma):
            nearest = min(
                footrule_full(gamma1, gamma2) for gamma2 in full_refinements(tau)
            )
            assert nearest <= fh + 1e-9

    @given(bucket_order_pairs())
    def test_hausdorff_upper_bounds_profile_metric(self, pair):
        # K_prof = |U| + (|S|+|T|)/2 <= |U| + max(|S|,|T|) = K_Haus
        sigma, tau = pair
        counts = pair_counts(sigma, tau)
        assert counts.kendall(0.5) <= counts.kendall_hausdorff()


class TestProfileStructure:
    @given(bucket_order_pairs())
    def test_kendall_via_pair_count_identity(self, pair):
        sigma, tau = pair
        counts = pair_counts(sigma, tau)
        expected = counts.discordant + 0.5 * (
            counts.tied_first_only + counts.tied_second_only
        )
        assert kendall(sigma, tau) == pytest.approx(expected)

    @given(bucket_orders())
    def test_distance_to_reverse_is_maximal_kendall(self, sigma):
        """K_prof(sigma, sigma^R) counts every strictly ordered pair once
        (discordant) and leaves within-bucket pairs tied in both."""
        reverse = sigma.reverse()
        strict_pairs = 0
        items = list(sigma.domain)
        for i, x in enumerate(items):
            for y in items[i + 1 :]:
                if not sigma.tied(x, y):
                    strict_pairs += 1
        assert kendall(sigma, reverse) == strict_pairs


class TestStarInteractions:
    @given(bucket_order_pairs())
    def test_star_never_increases_footrule_to_tau(self, pair):
        """Refining sigma by tau moves it weakly closer to any refinement of tau
        (Lemma 3 flavor, checked on the canonical refinement)."""
        tau, sigma = pair
        refined = star(tau, sigma)
        assert refined.is_refinement_of(sigma)

    @given(bucket_orders())
    def test_star_with_reverse_gives_reverse_order_within_buckets(self, sigma):
        reverse = sigma.reverse()
        refined = star(reverse, sigma)
        # each sigma-bucket is re-ordered by the reverse ranking, which ties
        # exactly the items tied in sigma: the result equals sigma itself
        assert refined == sigma


class TestDomainCorners:
    def test_singleton_domain_all_metrics_zero(self):
        a = PartialRanking([["x"]])
        assert kendall(a, a) == 0
        assert footrule(a, a) == 0
        assert kendall_hausdorff_counts(a, a) == 0
        assert footrule_hausdorff(a, a) == 0

    def test_two_element_extremes(self):
        ab = PartialRanking.from_sequence("ab")
        ba = PartialRanking.from_sequence("ba")
        tied = PartialRanking([["a", "b"]])
        assert kendall(ab, ba) == 1
        assert kendall(ab, tied) == 0.5
        assert footrule(ab, ba) == 2
        assert footrule(ab, tied) == 1
        assert kendall_hausdorff_counts(ab, tied) == 1
        assert footrule_hausdorff(ab, tied) == 2
