"""Tests for the incremental (online) median aggregator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregate.median import (
    median_full_ranking,
    median_partial_ranking,
    median_scores,
    median_top_k,
)
from repro.aggregate.online import OnlineMedianAggregator
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.generators.random import random_bucket_order, resolve_rng


class TestConstruction:
    def test_empty_domain_rejected(self):
        with pytest.raises(AggregationError):
            OnlineMedianAggregator([])

    def test_no_inputs_yet(self):
        aggregator = OnlineMedianAggregator("abc")
        assert len(aggregator) == 0
        with pytest.raises(AggregationError):
            aggregator.scores()

    def test_domain_mismatch_rejected(self):
        aggregator = OnlineMedianAggregator("abc")
        with pytest.raises(AggregationError):
            aggregator.add(PartialRanking([["x", "y", "z"]]))


class TestOnlineEqualsBatch:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_snapshots_match_batch_after_every_add(self, seed):
        rng = resolve_rng(seed)
        n = 6
        aggregator = OnlineMedianAggregator(range(n))
        added: list[PartialRanking] = []
        for _ in range(4):
            ranking = random_bucket_order(n, rng, tie_bias=0.5)
            aggregator.add(ranking)
            added.append(ranking)
            assert aggregator.scores() == median_scores(added)
            assert aggregator.full_ranking() == median_full_ranking(added)
            assert aggregator.top_k(2) == median_top_k(added, 2)
            assert aggregator.partial_ranking() == median_partial_ranking(added)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_discard_restores_previous_state(self, seed):
        rng = resolve_rng(seed)
        n = 6
        aggregator = OnlineMedianAggregator(range(n))
        first = random_bucket_order(n, rng, tie_bias=0.5)
        second = random_bucket_order(n, rng, tie_bias=0.5)
        aggregator.add(first)
        baseline = aggregator.scores()
        aggregator.add(second)
        aggregator.discard(second)
        assert aggregator.scores() == baseline
        assert len(aggregator) == 1


class TestDiscard:
    def test_discard_unknown_ranking_is_rejected_and_noop(self):
        aggregator = OnlineMedianAggregator("ab")
        aggregator.add(PartialRanking.from_sequence("ab"))
        before = aggregator.scores()
        with pytest.raises(AggregationError):
            aggregator.discard(PartialRanking.from_sequence("ba"))
        assert aggregator.scores() == before
        assert len(aggregator) == 1

    def test_discard_from_empty_rejected(self):
        aggregator = OnlineMedianAggregator("ab")
        with pytest.raises(AggregationError):
            aggregator.discard(PartialRanking.from_sequence("ab"))

    def test_duplicate_adds_need_duplicate_discards(self):
        aggregator = OnlineMedianAggregator("ab")
        sigma = PartialRanking.from_sequence("ab")
        aggregator.add(sigma)
        aggregator.add(sigma)
        aggregator.discard(sigma)
        assert len(aggregator) == 1
        aggregator.discard(sigma)
        assert len(aggregator) == 0


class TestInteractiveScenario:
    def test_toggling_criteria_like_a_search_page(self):
        """Add four criteria, drop one, like a user refining a search."""
        rng = resolve_rng(5)
        n = 12
        criteria = [random_bucket_order(n, rng, tie_bias=0.6) for _ in range(4)]
        aggregator = OnlineMedianAggregator(range(n))
        for ranking in criteria:
            aggregator.add(ranking)
        with_all = aggregator.top_k(3)
        aggregator.discard(criteria[1])
        without_one = aggregator.top_k(3)
        assert with_all.domain == without_one.domain
        assert aggregator.scores() == median_scores(
            [criteria[0], criteria[2], criteria[3]]
        )

    def test_bad_k_rejected(self):
        aggregator = OnlineMedianAggregator("abc")
        aggregator.add(PartialRanking.from_sequence("abc"))
        with pytest.raises(AggregationError):
            aggregator.top_k(0)
        with pytest.raises(AggregationError):
            aggregator.top_k(4)


class TestVoterKeyedUpdates:
    """Replace semantics: voters re-rank, they do not append."""

    def test_update_inserts_then_replaces(self):
        aggregator = OnlineMedianAggregator("abc")
        first = PartialRanking.from_sequence("abc")
        second = PartialRanking.from_sequence("cba")
        assert aggregator.update("alice", first) is False
        assert len(aggregator) == 1
        assert aggregator.update("alice", second) is True
        assert len(aggregator) == 1
        assert aggregator.scores() == median_scores([second])
        assert aggregator.voters == frozenset({"alice"})

    def test_update_equals_offline_median_of_voter_map(self):
        rng = resolve_rng(11)
        n = 9
        aggregator = OnlineMedianAggregator(range(n))
        voters: dict[str, PartialRanking] = {}
        for step in range(30):
            key = f"v{step % 7}"
            ranking = random_bucket_order(n, rng, tie_bias=0.4)
            replaced = aggregator.update(key, ranking)
            assert replaced == (key in voters)
            voters[key] = ranking
            assert aggregator.scores() == median_scores(list(voters.values()))
            assert len(aggregator) == len(voters)

    def test_failed_update_is_a_noop(self):
        aggregator = OnlineMedianAggregator("abc")
        aggregator.update("alice", PartialRanking.from_sequence("abc"))
        before = aggregator.scores()
        with pytest.raises(AggregationError):
            aggregator.update("alice", PartialRanking([["x", "y", "z"]]))
        assert aggregator.scores() == before
        assert len(aggregator) == 1
        assert aggregator.voters == frozenset({"alice"})

    def test_forget_drops_the_voter(self):
        aggregator = OnlineMedianAggregator("ab")
        sigma = PartialRanking.from_sequence("ab")
        tau = PartialRanking.from_sequence("ba")
        aggregator.update("alice", sigma)
        aggregator.update("bob", tau)
        aggregator.forget("alice")
        assert len(aggregator) == 1
        assert aggregator.voters == frozenset({"bob"})
        assert aggregator.scores() == median_scores([tau])

    def test_forget_unknown_voter_rejected(self):
        aggregator = OnlineMedianAggregator("ab")
        aggregator.add(PartialRanking.from_sequence("ab"))
        with pytest.raises(AggregationError):
            aggregator.forget("nobody")
        assert len(aggregator) == 1

    def test_voter_map_survives_pickle(self):
        import pickle

        aggregator = OnlineMedianAggregator("abc")
        aggregator.update("alice", PartialRanking.from_sequence("abc"))
        aggregator.update("bob", PartialRanking.from_sequence("bca"))
        clone = pickle.loads(pickle.dumps(aggregator))
        assert clone.voters == aggregator.voters
        assert clone.scores() == aggregator.scores()
        assert clone.update("alice", PartialRanking.from_sequence("cab")) is True
        assert clone.scores() == median_scores(
            [PartialRanking.from_sequence("cab"), PartialRanking.from_sequence("bca")]
        )

    def test_updates_and_anonymous_adds_coexist(self):
        aggregator = OnlineMedianAggregator("abc")
        anonymous = PartialRanking.from_sequence("abc")
        keyed = PartialRanking.from_sequence("cba")
        aggregator.add(anonymous)
        aggregator.update("alice", keyed)
        assert len(aggregator) == 2
        assert aggregator.scores() == median_scores([anonymous, keyed])
        aggregator.forget("alice")
        assert aggregator.scores() == median_scores([anonymous])
