"""Tests for the sequential-access MEDRANK / NRA algorithms."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregate.median import median_scores
from repro.aggregate.medrank import AccessLog, medrank, nra_median
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.generators.random import (
    random_bucket_order,
    random_full_ranking,
    resolve_rng,
)


class TestAccessLog:
    def test_derived_quantities(self):
        log = AccessLog(depth=5, num_lists=4, domain_size=50)
        assert log.total_accesses == 20
        assert log.saturation == 0.1

    def test_empty_domain_saturation(self):
        assert AccessLog(depth=0, num_lists=2, domain_size=0).saturation == 0.0


class TestMedrank:
    def test_paper_instantiation_unanimous_top(self):
        # all three lists start with 'a': majority reached at depth 1
        rankings = [
            PartialRanking.from_sequence("abc"),
            PartialRanking.from_sequence("acb"),
            PartialRanking.from_sequence("abc"),
        ]
        result = medrank(rankings, k=1)
        assert result.winners == ("a",)
        assert result.access_log.depth == 1

    def test_winner_has_minimal_median_on_full_rankings(self):
        rng = resolve_rng(17)
        for _ in range(25):
            rankings = [random_full_ranking(9, rng) for _ in range(5)]
            result = medrank(rankings, k=1)
            scores = median_scores(rankings)
            assert scores[result.winners[0]] == min(scores.values())

    def test_output_is_top_k_list(self):
        rng = resolve_rng(3)
        rankings = [random_bucket_order(8, rng) for _ in range(3)]
        result = medrank(rankings, k=3)
        assert result.ranking.is_top_k(3)
        assert len(result.winners) == 3
        assert len(set(result.winners)) == 3

    def test_bad_parameters_rejected(self):
        rankings = [PartialRanking.from_sequence("ab")]
        with pytest.raises(AggregationError):
            medrank(rankings, k=0)
        with pytest.raises(AggregationError):
            medrank(rankings, k=3)
        with pytest.raises(AggregationError):
            medrank(rankings, quota=0.0)
        with pytest.raises(AggregationError):
            medrank(rankings, quota=1.0)

    def test_higher_quota_reads_deeper(self):
        rng = resolve_rng(23)
        rankings = [random_full_ranking(30, rng) for _ in range(5)]
        shallow = medrank(rankings, k=1, quota=0.5)
        deep = medrank(rankings, k=1, quota=0.9)
        assert deep.access_log.depth >= shallow.access_log.depth

    def test_depth_never_exceeds_domain(self):
        rng = resolve_rng(29)
        for _ in range(10):
            rankings = [random_bucket_order(12, rng) for _ in range(4)]
            result = medrank(rankings, k=12)
            assert result.access_log.depth <= 12

    def test_accesses_are_depth_times_lists(self):
        rng = resolve_rng(31)
        rankings = [random_full_ranking(20, rng) for _ in range(3)]
        result = medrank(rankings, k=2)
        assert result.access_log.total_accesses == result.access_log.depth * 3


class TestNraMedian:
    def test_certified_winner_minimizes_median(self):
        rng = resolve_rng(41)
        for _ in range(25):
            rankings = [random_bucket_order(10, rng) for _ in range(5)]
            result = nra_median(rankings, k=1)
            scores = median_scores(rankings)
            assert scores[result.winners[0]] == pytest.approx(min(scores.values()))

    def test_certified_topk_dominates_complement(self):
        rng = resolve_rng(43)
        for _ in range(15):
            rankings = [random_bucket_order(10, rng) for _ in range(4)]
            k = 3
            result = nra_median(rankings, k=k)
            scores = median_scores(rankings)
            worst_selected = max(scores[item] for item in result.winners)
            rest = set(rankings[0].domain) - set(result.winners)
            assert all(scores[item] >= worst_selected - 1e-9 for item in rest)

    def test_stops_early_on_correlated_inputs(self):
        top = list(range(40))
        rankings = [PartialRanking.from_sequence(top) for _ in range(3)]
        result = nra_median(rankings, k=1)
        assert result.access_log.depth < 40

    def test_bad_parameters_rejected(self):
        rankings = [PartialRanking.from_sequence("ab")]
        with pytest.raises(AggregationError):
            nra_median(rankings, k=0)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_nra_and_full_information_agree_on_winner_score(self, seed):
        rng = resolve_rng(seed)
        rankings = [random_bucket_order(8, rng) for _ in range(3)]
        result = nra_median(rankings, k=1)
        scores = median_scores(rankings)
        assert scores[result.winners[0]] == pytest.approx(min(scores.values()))


class TestSingleList:
    def test_single_input_returns_its_top(self):
        sigma = PartialRanking.from_sequence("cab")
        result = medrank([sigma], k=1)
        assert result.winners == ("c",)
        assert result.access_log.depth == 1
        certified = nra_median([sigma], k=1)
        assert certified.winners == ("c",)
