"""Tests for the repro.obs observability layer.

Covers span nesting, counter exactness against closed-form pair counts,
the disabled no-op fast path, span propagation across a real
``parallel_map`` process boundary, the JSONL trace schema, and the CLI
summarizer round trip (including ``REPRO_TRACE`` env activation in a
fresh interpreter).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.core.partial_ranking import PartialRanking
from repro.metrics.batch import pair_counts_matrix
from repro.obs import cli as obs_cli
from repro.obs import export, metrics, spans
from repro.parallel import parallel_map

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _isolated_obs():
    """Detach any ambient session (e.g. CI's REPRO_TRACE) and reset metrics.

    The disabled-mode tests below assert that tracing is *off*; without
    this fixture an env-armed session in the outer process would leak
    spans from every test into its trace file and flip ``enabled()``.
    """
    saved = spans._SESSIONS[:]
    spans._SESSIONS.clear()
    spans._LOCAL.stack.clear()
    metrics.reset()
    yield
    spans._SESSIONS[:] = saved
    spans._LOCAL.stack.clear()
    metrics.reset()


def _profile_3x4() -> list[PartialRanking]:
    """Three full rankings over a 4-item domain: m=3, n=4."""
    return [
        PartialRanking.from_sequence(["a", "b", "c", "d"]),
        PartialRanking.from_sequence(["d", "c", "b", "a"]),
        PartialRanking.from_sequence(["b", "a", "d", "c"]),
    ]


class TestSpans:
    def test_nesting_attaches_children(self):
        with obs.capture() as sess:
            with obs.trace("outer", label="x"):
                with obs.trace("inner"):
                    pass
                with obs.trace("inner"):
                    pass
        assert [root.name for root in sess.roots] == ["outer"]
        outer = sess.roots[0]
        assert outer.attrs == {"label": "x"}
        assert [child.name for child in outer.children] == ["inner", "inner"]
        assert outer.duration_ns >= sum(c.duration_ns for c in outer.children)
        assert outer.self_ns <= outer.duration_ns

    def test_counters_land_on_the_open_span_and_registry(self):
        with obs.capture() as sess:
            with obs.trace("work"):
                obs.add("test.items", 3)
                obs.add("test.items", 4)
        assert sess.roots[0].counters == {"test.items": 7}
        assert metrics.snapshot()["counters"]["test.items"] == 7

    def test_traced_decorator_defaults_to_qualified_name(self):
        @obs.traced()
        def helper():
            return 41

        with obs.capture() as sess:
            assert helper() == 41
        assert sess.roots[0].name.endswith("helper")

    def test_exception_is_recorded_and_reraised(self):
        with obs.capture() as sess:
            with pytest.raises(ValueError):
                with obs.trace("doomed"):
                    raise ValueError("boom")
        assert sess.roots[0].attrs["error"] == "ValueError"

    def test_set_attr_reaches_the_open_span(self):
        with obs.capture() as sess:
            with obs.trace("work"):
                obs.set_attr("engine", "array")
        assert sess.roots[0].attrs == {"engine": "array"}


class TestDisabledMode:
    def test_everything_is_a_noop_without_a_session(self):
        assert not obs.enabled()
        assert obs.trace("anything") is obs.trace("other")  # shared noop
        obs.add("test.ignored", 5)
        obs.set_attr("ignored", 1)
        assert metrics.snapshot() == {"counters": {}, "histograms": {}}
        assert obs.current_span() is None

    def test_results_identical_disabled_vs_enabled(self):
        rankings = _profile_3x4()
        disabled = pair_counts_matrix(rankings)
        with obs.capture():
            enabled_run = pair_counts_matrix(rankings)
        assert (disabled.concordant == enabled_run.concordant).all()
        assert (disabled.discordant == enabled_run.discordant).all()


class TestCounterExactness:
    def test_pair_counts_matrix_books_exact_pair_work(self):
        # m=3 rankings over n=4 items: m * n(n-1)/2 = 3 * 6 = 18 item
        # pairs compared, over m(m-1)/2 = 3 ranking pairs.
        with obs.capture():
            pair_counts_matrix(_profile_3x4())
        counters = metrics.snapshot()["counters"]
        assert counters["metrics.batch.pairs"] == 18
        assert counters["metrics.batch.ranking_pairs"] == 3

    def test_counter_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            metrics.counter("test.monotone").inc(-1)

    def test_metric_names_are_validated(self):
        with pytest.raises(ValueError):
            metrics.counter("Not A Name")

    def test_kernel_timer_observes_a_histogram(self):
        with obs.capture():
            with obs.kernel_timer("test_kernel"):
                pass
        histograms = metrics.snapshot()["histograms"]
        assert histograms["kernel.test_kernel"]["count"] == 1


def _traced_square(x: int) -> int:
    with obs.trace("test.square", x=x):
        obs.add("test.squares")
        return x * x


class TestWorkerPropagation:
    def test_spans_cross_a_real_process_boundary(self):
        items = list(range(8))
        with obs.capture() as sess:
            results = parallel_map(_traced_square, items, jobs=2)
        assert results == [x * x for x in items]

        assert [root.name for root in sess.roots] == ["parallel.map"]
        pm = sess.roots[0]
        assert pm.attrs["jobs"] == 2
        workers = {child.worker for child in pm.children}
        assert workers and workers <= {0, 1}
        assert [child.name for child in pm.children].count("test.square") == 8
        # every child ran in a worker process, not the parent
        assert all(child.pid != os.getpid() for child in pm.children)
        # worker counters are folded into the parent registry exactly
        assert metrics.snapshot()["counters"]["test.squares"] == 8

    def test_serial_fallback_still_traces(self):
        with obs.capture() as sess:
            parallel_map(_traced_square, [1, 2], jobs=1)
        assert [root.name for root in sess.roots] == ["test.square", "test.square"]
        assert metrics.snapshot()["counters"]["test.squares"] == 2


class TestJsonlRoundTrip:
    def test_session_writes_spans_and_metrics_lines(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        with obs.session(str(trace_path)):
            with obs.trace("work", n=4):
                obs.add("test.items", 18)
        lines = [json.loads(line) for line in trace_path.read_text().splitlines()]
        kinds = [line["kind"] for line in lines]
        assert kinds == ["span", "metrics"]
        assert lines[0]["name"] == "work"
        assert lines[0]["counters"] == {"test.items": 18}
        assert lines[1]["counters"] == {"test.items": 18}
        assert lines[1]["dropped_spans"] == 0

        read_spans, snapshot = export.read_trace(str(trace_path))
        assert [span.name for span in read_spans] == ["work"]
        assert read_spans[0].attrs == {"n": 4}
        assert snapshot["counters"] == {"test.items": 18}

    def test_cli_summarize_round_trip(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        with obs.session(str(trace_path)):
            for _ in range(3):
                with obs.trace("metrics.pair_counts"):
                    obs.add("metrics.pairs", 6)
        assert obs_cli.main(["summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "metrics.pair_counts" in out
        assert "metrics.pairs" in out
        assert "18" in out  # 3 spans x 6 pairs, exactly

    def test_cli_summarize_json_merges_worker_rows(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        with obs.session(str(trace_path)):
            with obs.trace("parallel.map"):
                obs.attach_worker_spans(
                    [{"name": "w", "start_ns": 0, "duration_ns": 10, "pid": 1}],
                    worker=0,
                )
                obs.attach_worker_spans(
                    [{"name": "w", "start_ns": 5, "duration_ns": 10, "pid": 2}],
                    worker=1,
                )
        assert obs_cli.main(["summarize", str(trace_path), "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        rows = {row["name"]: row for row in summary["spans"]}
        assert rows["w"]["calls"] == 2
        assert rows["w"]["workers"] == [0, 1]

    def test_cli_tree_renders_nesting(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        with obs.session(str(trace_path)):
            with obs.trace("outer"):
                with obs.trace("inner"):
                    pass
        assert obs_cli.main(["tree", str(trace_path)]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].startswith("outer")
        assert out[1].startswith("  inner")

    def test_truncated_trace_recovers_counters_from_spans(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        with obs.session(str(trace_path)):
            with obs.trace("work"):
                obs.add("test.items", 5)
        # drop the closing metrics line, as if the process was killed
        lines = trace_path.read_text().splitlines()
        trace_path.write_text(lines[0] + "\n")
        assert obs_cli.main(["summarize", str(trace_path)]) == 0
        assert "test.items" in capsys.readouterr().out


class TestEnvActivation:
    def test_repro_trace_env_arms_a_fresh_interpreter(self, tmp_path):
        trace_path = tmp_path / "env-trace.jsonl"
        env = dict(os.environ)
        env["REPRO_TRACE"] = str(trace_path)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        code = (
            "from repro.metrics import pair_counts\n"
            "from repro.core.partial_ranking import PartialRanking\n"
            "a = PartialRanking.from_sequence(list('abcd'))\n"
            "b = PartialRanking.from_sequence(list('dcba'))\n"
            "pair_counts(a, b)\n"
        )
        subprocess.run(
            [sys.executable, "-c", code], env=env, check=True, cwd=REPO_ROOT
        )
        read_spans, snapshot = export.read_trace(str(trace_path))
        assert [span.name for span in read_spans] == ["metrics.pair_counts"]
        assert snapshot["counters"]["metrics.pairs"] == 6  # n=4 -> 6 pairs

    def test_unset_env_writes_nothing(self, tmp_path):
        trace_path = tmp_path / "absent.jsonl"
        env = dict(os.environ)
        env.pop("REPRO_TRACE", None)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        subprocess.run(
            [sys.executable, "-c", "import repro.obs"], env=env, check=True,
            cwd=REPO_ROOT,
        )
        assert not trace_path.exists()


class TestPrometheusExport:
    def test_counters_and_histograms_flatten(self):
        with obs.capture():
            obs.add("test.pairs", 7)
            with obs.kernel_timer("probe"):
                pass
        text = export.prometheus_text()
        assert "# TYPE repro_test_pairs counter" in text
        assert "repro_test_pairs 7" in text
        assert "repro_kernel_probe_count 1" in text
