"""Pickle round-trips for ``PartialRanking`` / ``DomainCodec``.

``PartialRanking.__reduce__`` ships only the bucket tuples — every cache
(domain, canonical order, dense arrays) is rebuilt lazily on the other
side. These tests pin the properties the parallel layer relies on:
equality and canonical order survive the round-trip, dense arrays against
the (re-)interned codec are bit-for-bit equal, and all of it holds across
a *real* process boundary, not just an in-process dumps/loads pair.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
from hypothesis import given, settings

from repro.core.codec import DomainCodec
from repro.core.partial_ranking import PartialRanking

from tests.conftest import bucket_orders


def _observe(sigma: PartialRanking) -> tuple[PartialRanking, list, list, list, bool]:
    """Pool worker: rebuild caches in a fresh process and report them."""
    codec = DomainCodec.for_domain(sigma.domain)
    buckets_idx, positions = sigma.dense_arrays(codec)
    interned_again = DomainCodec.for_domain(sigma.domain) is codec
    return (
        sigma,
        list(codec.items),
        buckets_idx.tolist(),
        positions.tolist(),
        interned_again,
    )


class TestInProcessRoundTrip:
    @given(sigma=bucket_orders(max_size=7))
    def test_equality_and_buckets_survive(self, sigma):
        clone = pickle.loads(pickle.dumps(sigma))
        assert clone == sigma
        assert clone.buckets == sigma.buckets
        assert clone.domain == sigma.domain

    @given(sigma=bucket_orders(max_size=7))
    def test_canonical_order_and_positions_survive(self, sigma):
        clone = pickle.loads(pickle.dumps(sigma))
        assert clone.items_in_order() == sigma.items_in_order()
        assert clone.positions == sigma.positions

    @given(sigma=bucket_orders(max_size=7))
    def test_dense_arrays_reencode_identically(self, sigma):
        clone = pickle.loads(pickle.dumps(sigma))
        codec = DomainCodec.for_domain(sigma.domain)
        # the clone's domain is equal, so interning hands back the SAME codec
        assert DomainCodec.for_domain(clone.domain) is codec
        original = sigma.dense_arrays(codec)
        recoded = clone.dense_arrays(codec)
        assert np.array_equal(original[0], recoded[0])
        assert np.array_equal(original[1], recoded[1])

    def test_reduce_ships_only_buckets(self):
        sigma = PartialRanking([[2, 0], [1]])
        codec = DomainCodec.for_domain(sigma.domain)
        sigma.dense_arrays(codec)  # populate the caches
        cls, payload = sigma.__reduce__()
        assert cls is PartialRanking
        assert payload == (sigma.buckets,)


class TestProcessBoundaryRoundTrip:
    def _rankings(self) -> list[PartialRanking]:
        return [
            PartialRanking([[0, 1, 2, 3]]),
            PartialRanking.from_sequence([3, 1, 0, 2]),
            PartialRanking([[2], [0, 3], [1]]),
            PartialRanking.top_k(["b", "a"], ["a", "b", "c", "d"]),
        ]

    def test_worker_rebuilds_identical_state(self):
        rankings = self._rankings()
        with ProcessPoolExecutor(max_workers=2) as pool:
            observed = list(pool.map(_observe, rankings))
        for sigma, (clone, items, buckets_idx, positions, interned) in zip(
            rankings, observed
        ):
            codec = DomainCodec.for_domain(sigma.domain)
            x, pos = sigma.dense_arrays(codec)
            assert clone == sigma  # round-tripped back through the result pickle
            assert items == list(codec.items)  # same canonical order remotely
            assert buckets_idx == x.tolist()  # dense arrays bit-for-bit equal
            assert positions == pos.tolist()
            assert interned  # for_domain in the worker interned to one codec


@settings(max_examples=15)
@given(sigma=bucket_orders(min_size=2, max_size=6))
def test_process_boundary_property(sigma):
    """Hypothesis + a real pool: remote re-encoding matches local exactly."""
    with ProcessPoolExecutor(max_workers=1) as pool:
        clone, items, buckets_idx, positions, interned = pool.submit(
            _observe, sigma
        ).result()
    codec = DomainCodec.for_domain(sigma.domain)
    x, pos = sigma.dense_arrays(codec)
    assert clone == sigma
    assert items == list(codec.items)
    assert buckets_idx == x.tolist()
    assert positions == pos.tolist()
    assert interned
