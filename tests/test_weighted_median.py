"""Tests for weighted median aggregation (the Lemma 8 generalization)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregate.median import (
    MedianAggregator,
    median_full_ranking,
    median_of,
    median_scores,
)
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.generators.random import random_bucket_order, resolve_rng


class TestWeightedMedianOf:
    def test_dominant_weight_wins(self):
        assert median_of([1.0, 2.0, 10.0], weights=[1.0, 1.0, 5.0]) == 10.0

    def test_unit_weights_match_unweighted(self):
        values = [4.0, 1.0, 3.0, 2.0]
        for tie in ("low", "mid", "high"):
            assert median_of(values, tie=tie, weights=[1.0] * 4) == median_of(
                values, tie=tie
            )

    def test_exact_half_split_uses_tie_rule(self):
        assert median_of([1.0, 2.0], weights=[1.0, 1.0], tie="low") == 1.0
        assert median_of([1.0, 2.0], weights=[1.0, 1.0], tie="high") == 2.0
        assert median_of([1.0, 2.0], weights=[1.0, 1.0], tie="mid") == 1.5

    def test_weight_validation(self):
        with pytest.raises(AggregationError):
            median_of([1.0, 2.0], weights=[1.0])
        with pytest.raises(AggregationError):
            median_of([1.0, 2.0], weights=[1.0, 0.0])
        with pytest.raises(AggregationError):
            median_of([1.0], weights=[-2.0])

    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-20, max_value=20),
                st.floats(min_value=0.1, max_value=5.0),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_weighted_median_minimizes_weighted_l1(self, pairs):
        """The weighted Lemma 8: no point beats the weighted median."""
        values = [v for v, _ in pairs]
        weights = [w for _, w in pairs]

        def objective(x: float) -> float:
            return sum(w * abs(x - v) for (v, w) in pairs)

        for tie in ("low", "mid", "high"):
            m = median_of(values, tie=tie, weights=weights)
            best = objective(m)
            for candidate in values:
                assert best <= objective(candidate) + 1e-9


class TestWeightedScores:
    def test_heavily_weighted_voter_dominates(self):
        a = PartialRanking.from_sequence("abc")
        b = PartialRanking.from_sequence("cba")
        scores = median_scores([a, b, b], weights=[10.0, 1.0, 1.0])
        assert scores["a"] < scores["c"]

    def test_weight_count_validated(self):
        a = PartialRanking.from_sequence("ab")
        with pytest.raises(AggregationError):
            median_scores([a, a], weights=[1.0])

    def test_full_ranking_respects_weights(self):
        a = PartialRanking.from_sequence("abc")
        b = PartialRanking.from_sequence("cba")
        heavy_a = median_full_ranking([a, b], weights=[5.0, 1.0])
        heavy_b = median_full_ranking([a, b], weights=[1.0, 5.0])
        assert heavy_a == a
        assert heavy_b == b


class TestWeightedAggregator:
    def test_weights_forwarded_through_all_outputs(self):
        rng = resolve_rng(7)
        rankings = tuple(random_bucket_order(6, rng) for _ in range(3))
        weighted = MedianAggregator(rankings, weights=(3.0, 1.0, 1.0))
        assert weighted.full_ranking().domain == rankings[0].domain
        assert weighted.partial_ranking().domain == rankings[0].domain
        assert weighted.top_k(2).is_top_k(2)

    def test_weight_count_validated_at_construction(self):
        a = PartialRanking.from_sequence("ab")
        with pytest.raises(AggregationError):
            MedianAggregator((a, a), weights=(1.0,))

    def test_unit_weights_match_unweighted_everywhere(self):
        rng = resolve_rng(13)
        rankings = tuple(random_bucket_order(7, rng) for _ in range(4))
        plain = MedianAggregator(rankings)
        weighted = MedianAggregator(rankings, weights=(1.0,) * 4)
        assert plain.scores() == weighted.scores()
        assert plain.full_ranking() == weighted.full_ranking()
        assert plain.partial_ranking() == weighted.partial_ranking()
