"""The verification harness itself: registry, fuzz, shrink, replay, CLI.

The fuzz smoke runs live in ``tests/test_verify_fuzz.py`` behind the
``fuzz`` marker; here we pin the *machinery* — check addressing, clean
runs on known-good fixtures, determinism across seeds and job counts,
shrinking and replay of the deliberately injected mutant, and the CLI
exit-code contract.
"""

from __future__ import annotations

import json

import pytest

import repro.metrics
from repro.core.partial_ranking import PartialRanking
from repro.verify import (
    SELFTEST_CHECK_ID,
    all_checks,
    covered_names,
    find_check,
    load_replay,
    run_check,
    run_fuzz,
    run_selftest,
    select_checks,
    shrink_case,
    write_replay,
)
from repro.verify.cli import main as verify_main
from repro.verify.replay import REPLAY_SCHEMA, ReplayError, replay_file

#: A workload every non-self-test check must pass: mixed tie structures
#: over one 6-item domain (full, coarse, top-k, single bucket).
FIXTURE = (
    PartialRanking.from_sequence([3, 0, 5, 1, 4, 2]),
    PartialRanking([[0, 1], [4], [2, 3, 5]]),
    PartialRanking.top_k([5, 2], range(6)),
    PartialRanking.single_bucket(range(6)),
)


class TestRegistry:
    def test_check_census(self):
        checks = all_checks()
        kinds = [info.kind for info in checks]
        # 27 static + 2 auto-contributed plugin oracles; 14 static + 2
        # plugins x (symmetry, regularity) auto-contributed relations
        assert kinds.count("oracle") == 29
        assert kinds.count("relation") == 18
        assert not any(info.selftest_only for info in checks)

    def test_selftest_check_hidden_by_default(self):
        visible = {info.check_id for info in all_checks()}
        with_selftest = {info.check_id for info in all_checks(include_selftest=True)}
        assert SELFTEST_CHECK_ID not in visible
        assert SELFTEST_CHECK_ID in with_selftest

    def test_check_ids_unique_and_namespaced(self):
        ids = [info.check_id for info in all_checks(include_selftest=True)]
        assert len(ids) == len(set(ids))
        assert all(i.startswith(("oracle:", "relation:")) for i in ids)

    def test_every_check_carries_a_citation(self):
        assert all(info.citation for info in all_checks(include_selftest=True))

    def test_coverage_matches_metric_exports(self):
        # the runtime counterpart of analysis rule RP010: every distance
        # kernel exported from repro.metrics and every aggregation kernel
        # exported from repro.aggregate.batch has an oracle entry
        import repro.aggregate.batch

        exported = {
            name
            for name in repro.metrics.__all__
            if name.startswith(
                ("kendall", "footrule", "normalized_", "pair_counts", "pairwise_", "count_inversions")
            )
        }
        exempt = {"kendall_tau_a", "kendall_tau_b"}
        expected = (exported - exempt) | set(repro.aggregate.batch.__all__)
        assert covered_names() == expected

    def test_find_check_round_trips(self):
        for info in all_checks(include_selftest=True):
            assert find_check(info.check_id) == info

    def test_find_check_unknown_raises(self):
        with pytest.raises(KeyError, match="no-such-check"):
            find_check("oracle:no-such-check")

    def test_select_checks_substring(self):
        selected = select_checks(["hausdorff"])
        assert selected
        assert all("hausdorff" in info.check_id for info in selected)

    def test_select_checks_bad_pattern_raises(self):
        with pytest.raises(ValueError, match="matches no check id"):
            select_checks(["zzz-not-a-check"])

    def test_select_checks_deduplicates(self):
        once = select_checks(["kendall"])
        twice = select_checks(["kendall", "kendall"])
        assert once == twice


class TestRunCheck:
    @pytest.mark.parametrize(
        "check_id",
        [info.check_id for info in all_checks()],
    )
    def test_all_checks_pass_on_fixture(self, check_id):
        info = find_check(check_id)
        rankings = FIXTURE
        if info.max_items is not None and len(FIXTURE[0]) > info.max_items:
            rankings = tuple(
                sigma.restricted_to(range(info.max_items)) for sigma in FIXTURE
            )
        assert run_check(check_id, rankings) == []

    def test_selftest_mutant_is_caught(self):
        sigma = PartialRanking([[0, 1], [2]])
        tau = PartialRanking([[0, 1, 2]])
        failures = run_check(SELFTEST_CHECK_ID, (sigma, tau))
        assert failures  # the flipped tie penalty must NOT pass
        assert "selftest-kendall-flipped-tie" in failures[0]

    def test_malformed_id_raises(self):
        with pytest.raises(KeyError, match="malformed"):
            run_check("kendall", FIXTURE)


class TestFuzz:
    def test_clean_run(self):
        report = run_fuzz(4, seed=11, checks=all_checks())
        assert report.ok
        assert report.rounds == 4
        assert not report.discrepancies
        assert "OK" in report.summary()

    def test_same_seed_same_report(self):
        first = run_fuzz(3, seed=7, checks=all_checks())
        second = run_fuzz(3, seed=7, checks=all_checks())
        assert first.summary() == second.summary()
        assert first.check_ids == second.check_ids

    def test_jobs_do_not_change_results(self):
        serial = run_fuzz(4, seed=5, checks=all_checks())
        pooled = run_fuzz(4, seed=5, checks=all_checks(), jobs=2)
        assert serial.summary() == pooled.summary()
        assert [d.describe() for d in serial.discrepancies] == [
            d.describe() for d in pooled.discrepancies
        ]

    def test_mutant_check_produces_discrepancies(self):
        checks = select_checks(["selftest"], include_selftest=True)
        report = run_fuzz(6, seed=0, checks=checks)
        assert not report.ok
        first = report.discrepancies[0]
        assert first.check_id == SELFTEST_CHECK_ID
        assert first.rankings  # payload kept for shrinking/replay


class TestShrink:
    def test_mutant_shrinks_to_minimal_pair(self):
        checks = select_checks(["selftest"], include_selftest=True)
        report = run_fuzz(6, seed=0, checks=checks)
        discrepancy = report.discrepancies[0]
        shrunk = shrink_case(discrepancy.check_id, discrepancy.rankings)
        assert len(shrunk) == 2  # a pair check needs exactly two rankings
        assert len(shrunk[0]) <= len(discrepancy.rankings[0])
        assert run_check(discrepancy.check_id, shrunk)  # still fails

    def test_passing_case_is_returned_unchanged(self):
        check_id = all_checks()[0].check_id
        pair = FIXTURE[:2]
        assert shrink_case(check_id, pair) == pair


class TestReplay:
    def _failing_pair(self):
        return (PartialRanking([[0, 1], [2]]), PartialRanking([[0, 1, 2]]))

    def test_round_trip(self, tmp_path):
        pair = self._failing_pair()
        path = write_replay(
            tmp_path / "case.json",
            SELFTEST_CHECK_ID,
            pair,
            seed=42,
            round_index=3,
            detail="flipped tie penalty",
        )
        check_id, rankings, provenance = load_replay(path)
        assert check_id == SELFTEST_CHECK_ID
        assert rankings == pair
        assert provenance["seed"] == 42
        assert provenance["round"] == 3

    def test_replay_file_reproduces_mutant(self, tmp_path):
        path = write_replay(
            tmp_path / "case.json",
            SELFTEST_CHECK_ID,
            self._failing_pair(),
            seed=0,
            round_index=0,
            detail="",
        )
        assert replay_file(path)  # still fails -> non-empty violations

    def test_replay_file_passes_on_fixed_tree(self, tmp_path):
        path = write_replay(
            tmp_path / "case.json",
            "oracle:kendall-p-half",
            self._failing_pair(),
            seed=0,
            round_index=0,
            detail="",
        )
        assert replay_file(path) == []  # the real kernel agrees with its oracle

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        payload = {"schema": "someone-else/9", "check_id": SELFTEST_CHECK_ID}
        path.write_text(json.dumps(payload))
        with pytest.raises(ReplayError, match=REPLAY_SCHEMA.replace("/", "/")):
            load_replay(path)

    def test_exotic_items_rejected_at_write_time(self, tmp_path):
        pair = (
            PartialRanking([[(0, 1)], [(2, 3)]]),
            PartialRanking([[(0, 1), (2, 3)]]),
        )
        with pytest.raises(ReplayError):
            write_replay(
                tmp_path / "case.json",
                SELFTEST_CHECK_ID,
                pair,
                seed=0,
                round_index=0,
                detail="",
            )


class TestSelfTest:
    def test_all_stages_pass(self, tmp_path):
        result = run_selftest(replay_dir=tmp_path, rounds=6, seed=0)
        assert result.caught_direct
        assert result.caught_fuzz
        assert result.shrunk_still_fails
        assert result.shrunk_domain_size <= 3
        assert result.replay_reproduces
        assert result.ok
        assert "PASS" in result.summary()


class TestCli:
    def test_clean_fuzz_exits_zero(self, capsys):
        assert verify_main(["--rounds", "3", "--seed", "1"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_list_checks(self, capsys):
        assert verify_main(["--list-checks"]) == 0
        out = capsys.readouterr().out
        assert "oracle:kendall-p-half" in out
        assert "relation:hausdorff-witnesses" in out

    def test_json_format(self, capsys):
        assert verify_main(["--rounds", "2", "--seed", "1", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["rounds"] == 2

    def test_bad_checks_pattern_exits_two(self, capsys):
        assert verify_main(["--rounds", "2", "--checks", "zzz-nope"]) == 2
        assert "matches no check id" in capsys.readouterr().err

    def test_nonpositive_rounds_exits_two(self, capsys):
        assert verify_main(["--rounds", "0"]) == 2
        assert "must be positive" in capsys.readouterr().err

    def test_replay_exit_codes(self, tmp_path, capsys):
        failing = tmp_path / "failing.json"
        write_replay(
            failing,
            SELFTEST_CHECK_ID,
            (PartialRanking([[0, 1], [2]]), PartialRanking([[0, 1, 2]])),
            seed=0,
            round_index=0,
            detail="",
        )
        assert verify_main(["--replay", str(failing)]) == 1
        assert "still reproduces" in capsys.readouterr().out
        fixed = tmp_path / "fixed.json"
        write_replay(
            fixed,
            "oracle:footrule",
            (PartialRanking([[0, 1], [2]]), PartialRanking([[0, 1, 2]])),
            seed=0,
            round_index=0,
            detail="",
        )
        assert verify_main(["--replay", str(fixed)]) == 0

    def test_missing_replay_file_exits_one(self, tmp_path, capsys):
        assert verify_main(["--replay", str(tmp_path / "absent.json")]) == 1
        assert "error" in capsys.readouterr().err

    def test_self_test_via_top_level_cli(self, capsys, tmp_path, monkeypatch):
        # the ``python -m repro verify ...`` delegation path end to end
        from repro.cli import main as repro_main

        monkeypatch.chdir(tmp_path)
        assert repro_main(["verify", "--rounds", "2", "--seed", "1"]) == 0
        assert "OK" in capsys.readouterr().out
