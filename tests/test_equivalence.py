"""Tests for the Theorem 7 equivalence bounds and ratio measurement."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.partial_ranking import PartialRanking
from repro.generators.random import random_bucket_order, resolve_rng
from repro.metrics.equivalence import (
    PROVED_BOUNDS,
    check_proved_bounds,
    metric_bundle,
    summarize_ratios,
)
from tests.conftest import bucket_order_pairs


class TestMetricBundle:
    def test_values_consistent_with_direct_metrics(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        tau = PartialRanking([["c"], ["a", "b"]])
        bundle = metric_bundle(sigma, tau)
        assert bundle.k_prof == 2.0  # (a,c) and (b,c) discordant
        assert bundle.f_prof == 4.0
        assert bundle.value("k_haus") == bundle.k_haus

    def test_unknown_metric_name_rejected(self):
        sigma = PartialRanking([["a"]])
        bundle = metric_bundle(sigma, sigma)
        with pytest.raises(KeyError):
            bundle.value("nope")


class TestProvedBounds:
    def test_registry_shape(self):
        assert ("k_prof", "f_prof", 2.0) in PROVED_BOUNDS
        assert len(PROVED_BOUNDS) == 3

    @given(bucket_order_pairs())
    def test_no_pair_violates_theorem_7(self, pair):
        sigma, tau = pair
        failures = check_proved_bounds(metric_bundle(sigma, tau))
        assert failures == []

    def test_violation_detected_for_fake_bundle(self):
        from repro.metrics.equivalence import MetricBundle

        fake = MetricBundle(k_prof=1.0, f_prof=5.0, k_haus=1.0, f_haus=1.0)
        failures = check_proved_bounds(fake)
        assert any("f_prof" in failure for failure in failures)


class TestTightness:
    def test_f_equals_2k_on_tied_vs_split_pair(self):
        # one tied pair vs strictly ordered: K_prof = 1/2, F_prof = 1
        sigma = PartialRanking([["a", "b"]])
        tau = PartialRanking.from_sequence("ab")
        bundle = metric_bundle(sigma, tau)
        assert bundle.f_prof == 2 * bundle.k_prof

    def test_k_haus_equals_2k_prof_on_symmetric_ties(self):
        # S and T balanced: K_prof = (|S|+|T|)/2, K_Haus = max = one side
        sigma = PartialRanking([["a", "b"], ["c"]])
        tau = PartialRanking([["a"], ["b", "c"]])
        bundle = metric_bundle(sigma, tau)
        assert bundle.k_prof == 1.0  # |S|=1, |T|=1, U=0
        assert bundle.k_haus == 1.0


class TestSummarizeRatios:
    def test_ratios_within_bounds_on_random_sample(self):
        rng = resolve_rng(11)
        pairs = [
            (
                random_bucket_order(8, rng, tie_bias=0.5),
                random_bucket_order(8, rng, tie_bias=0.5),
            )
            for _ in range(25)
        ]
        summaries = summarize_ratios(pairs)
        assert summaries, "expected at least one summary"
        for summary in summaries:
            assert summary.within_bounds
            assert 1.0 <= summary.mean_ratio <= summary.proved_factor

    def test_zero_distance_pairs_are_skipped(self):
        sigma = PartialRanking([["a", "b"]])
        summaries = summarize_ratios([(sigma, sigma)])
        assert summaries == []
