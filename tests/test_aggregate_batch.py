"""Bit-for-bit equality of the position-matrix aggregation kernels.

The batch layer (:mod:`repro.aggregate.batch`) and the online aggregator
(:mod:`repro.aggregate.online`) both claim *exact* equality with the dict
reference path in :mod:`repro.aggregate.median` — not closeness within a
tolerance. These tests assert it with ``==`` across tie modes, weight
vectors (including arbitrary non-dyadic floats), degenerate profiles, and
process boundaries, plus the engine-dispatch plumbing that routes the
public API between the two implementations.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregate.batch import (
    median_fixed_type_batch,
    median_full_ranking_batch,
    median_partial_ranking_batch,
    median_scores_array,
    median_scores_batch,
    median_top_k_batch,
)
from repro.aggregate.median import (
    median_fixed_type,
    median_full_ranking,
    median_partial_ranking,
    median_scores,
    median_top_k,
)
from repro.aggregate.online import OnlineMedianAggregator
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.generators.random import random_bucket_order, resolve_rng

from tests.conftest import bucket_orders

TIES = ("low", "mid", "high")

#: Profiles over a shared domain: fixing the size makes every drawn
#: bucket order range over the same integer domain 0..n-1.
def _shared_domain_profiles(n: int, max_m: int = 5):
    return st.lists(bucket_orders(min_size=n, max_size=n), min_size=1, max_size=max_m)


def _random_profile(seed: int, n: int, m: int, tie_bias: float = 0.5):
    rng = resolve_rng(seed)
    return [random_bucket_order(n, rng, tie_bias=tie_bias) for _ in range(m)]


def _random_weights(seed: int, m: int) -> list[float]:
    """Arbitrary positive floats — deliberately NOT multiples of 1/2**k."""
    rng = resolve_rng(seed + 1)
    return [0.1 + rng.random() for _ in range(m)]


class TestScoresBitForBit:
    @settings(max_examples=40, deadline=None)
    @given(_shared_domain_profiles(4), st.sampled_from(TIES))
    def test_unweighted_scores_equal_dict_path(self, profile, tie):
        assert median_scores_batch(profile, tie=tie) == median_scores(
            profile, tie=tie, engine="dict"
        )

    @settings(max_examples=40, deadline=None)
    @given(
        _shared_domain_profiles(4),
        st.sampled_from(TIES),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_weighted_scores_equal_dict_path(self, profile, tie, seed):
        weights = _random_weights(seed, len(profile))
        assert median_scores_batch(profile, tie=tie, weights=weights) == median_scores(
            profile, tie=tie, weights=weights, engine="dict"
        )

    @pytest.mark.parametrize("tie", TIES)
    @pytest.mark.parametrize("m", [1, 2, 3, 8, 9])
    def test_even_and_odd_profile_sizes(self, tie, m):
        profile = _random_profile(seed=m, n=6, m=m)
        assert median_scores_batch(profile, tie=tie) == median_scores(
            profile, tie=tie, engine="dict"
        )

    @pytest.mark.parametrize("tie", TIES)
    def test_degenerate_profiles(self, tie):
        one_bucket = [PartialRanking([[0, 1, 2, 3]])] * 4
        singletons = [PartialRanking([[0], [1], [2], [3]])] * 3
        mixed = [PartialRanking([[0, 1, 2, 3]]), PartialRanking([[3], [2], [1], [0]])]
        for profile in (one_bucket, singletons, mixed):
            assert median_scores_batch(profile, tie=tie) == median_scores(
                profile, tie=tie, engine="dict"
            )

    def test_dyadic_and_extreme_weights(self):
        profile = _random_profile(seed=7, n=5, m=4)
        for weights in ([1.0, 1.0, 1.0, 1.0], [0.25, 0.5, 2.0, 4.0], [1e-6, 1e6, 1.0, 3.0]):
            for tie in TIES:
                assert median_scores_batch(
                    profile, tie=tie, weights=weights
                ) == median_scores(profile, tie=tie, weights=weights, engine="dict")

    def test_scores_are_plain_python_floats(self):
        scores = median_scores_batch(_random_profile(seed=0, n=4, m=3))
        assert all(type(value) is float for value in scores.values())


class TestOutputsBitForBit:
    @settings(max_examples=30, deadline=None)
    @given(_shared_domain_profiles(5), st.sampled_from(TIES))
    def test_full_and_partial_ranking_equal_dict_path(self, profile, tie):
        assert median_full_ranking_batch(profile, tie=tie) == median_full_ranking(
            profile, tie=tie, engine="dict"
        )
        assert median_partial_ranking_batch(profile, tie=tie) == median_partial_ranking(
            profile, tie=tie, engine="dict"
        )

    @settings(max_examples=30, deadline=None)
    @given(_shared_domain_profiles(5), st.integers(min_value=1, max_value=5))
    def test_top_k_equal_dict_path_all_k(self, profile, k):
        assert median_top_k_batch(profile, k) == median_top_k(
            profile, k, engine="dict"
        )

    def test_top_k_boundary_ties_resolved_canonically(self):
        # every item gets the same median score -> the boundary tie-break
        # must pick the canonically-first items, exactly like the sort.
        profile = [PartialRanking([[0, 1, 2, 3, 4]])] * 3
        for k in range(1, 6):
            assert median_top_k_batch(profile, k) == median_top_k(
                profile, k, engine="dict"
            )

    @pytest.mark.parametrize(
        "bucket_type", [(5,), (1, 4), (2, 3), (1, 1, 1, 1, 1), (4, 1)]
    )
    def test_fixed_type_equal_dict_path(self, bucket_type):
        profile = _random_profile(seed=11, n=5, m=5)
        for tie in TIES:
            assert median_fixed_type_batch(
                profile, bucket_type, tie=tie
            ) == median_fixed_type(profile, bucket_type, tie=tie, engine="dict")

    def test_weighted_outputs_equal_dict_path(self):
        profile = _random_profile(seed=3, n=6, m=5)
        weights = _random_weights(42, 5)
        assert median_top_k_batch(profile, 3, weights=weights) == median_top_k(
            profile, 3, weights=weights, engine="dict"
        )
        assert median_full_ranking_batch(
            profile, weights=weights
        ) == median_full_ranking(profile, weights=weights, engine="dict")
        assert median_partial_ranking_batch(
            profile, weights=weights
        ) == median_partial_ranking(profile, weights=weights, engine="dict")


class TestErrorParity:
    """The batch wrappers raise the same errors as the dict path."""

    def test_bad_k_messages_match(self):
        profile = _random_profile(seed=0, n=4, m=3)
        for k in (0, 5, -1):
            with pytest.raises(AggregationError) as batch_err:
                median_top_k_batch(profile, k)
            with pytest.raises(AggregationError) as dict_err:
                median_top_k(profile, k, engine="dict")
            assert str(batch_err.value) == str(dict_err.value)

    def test_bad_bucket_type_messages_match(self):
        profile = _random_profile(seed=0, n=4, m=3)
        for bucket_type in ((3,), (5,), (2, -1, 3), (0, 4)):
            with pytest.raises(AggregationError) as batch_err:
                median_fixed_type_batch(profile, bucket_type)
            with pytest.raises(AggregationError) as dict_err:
                median_fixed_type(profile, bucket_type, engine="dict")
            assert str(batch_err.value) == str(dict_err.value)

    def test_empty_profile_rejected(self):
        with pytest.raises(AggregationError, match="at least one input ranking"):
            median_scores_batch([])

    def test_mismatched_domains_rejected(self):
        profile = [PartialRanking([[0, 1]]), PartialRanking([[1, 2]])]
        with pytest.raises(AggregationError, match="different domain"):
            median_scores_batch(profile)

    def test_weight_validation_matches(self):
        profile = _random_profile(seed=0, n=4, m=3)
        with pytest.raises(AggregationError, match="2 weights for 3"):
            median_scores_batch(profile, weights=[1.0, 2.0])
        with pytest.raises(AggregationError, match="strictly positive"):
            median_scores_batch(profile, weights=[1.0, -2.0, 1.0])


class TestArrayKernelValidation:
    def test_rejects_non_2d_input(self):
        with pytest.raises(AggregationError, match="2-dimensional"):
            median_scores_array(np.zeros(4))

    def test_rejects_empty_matrix(self):
        with pytest.raises(AggregationError, match="empty profile"):
            median_scores_array(np.empty((0, 3)))

    def test_assume_sorted_incompatible_with_weights(self):
        with pytest.raises(AggregationError, match="unweighted kernel only"):
            median_scores_array(
                np.zeros((2, 3)), weights=[1.0, 2.0], assume_sorted=True
            )

    def test_assume_sorted_equals_fresh_sort(self):
        rng = resolve_rng(5)
        matrix = np.array(
            [[rng.randrange(10) / 2 for _ in range(4)] for _ in range(6)]
        )
        for tie in TIES:
            fresh = median_scores_array(matrix, tie=tie)
            presorted = median_scores_array(
                np.sort(matrix, axis=0), tie=tie, assume_sorted=True
            )
            assert (fresh == presorted).all()


class TestEngineDispatch:
    def test_unknown_engine_rejected(self):
        profile = _random_profile(seed=0, n=4, m=3)
        with pytest.raises(AggregationError, match="unknown median engine 'numpy'"):
            median_scores(profile, engine="numpy")  # type: ignore[arg-type]

    @pytest.mark.parametrize("engine", ["auto", "dict", "array"])
    def test_all_engines_agree_on_small_profiles(self, engine):
        profile = _random_profile(seed=9, n=5, m=4)
        reference = median_scores(profile, engine="dict")
        assert median_scores(profile, engine=engine) == reference

    def test_auto_crosses_to_array_on_large_profiles(self):
        # 40 x 30 = 1200 cells >= _ARRAY_MIN_CELLS: auto == array == dict.
        profile = _random_profile(seed=13, n=30, m=40)
        assert (
            median_scores(profile)
            == median_scores(profile, engine="array")
            == median_scores(profile, engine="dict")
        )

    def test_outputs_dispatch_through_engines(self):
        profile = _random_profile(seed=17, n=6, m=5)
        for engine in ("dict", "array", "auto"):
            assert median_top_k(profile, 2, engine=engine) == median_top_k(
                profile, 2, engine="dict"
            )
            assert median_full_ranking(profile, engine=engine) == median_full_ranking(
                profile, engine="dict"
            )
            assert median_partial_ranking(
                profile, engine=engine
            ) == median_partial_ranking(profile, engine="dict")
            assert median_fixed_type(
                profile, (2, 4), engine=engine
            ) == median_fixed_type(profile, (2, 4), engine="dict")


class TestOnlineMatchesBatch:
    def _assert_snapshot(self, aggregator, profile):
        assert aggregator.scores() == median_scores_batch(
            profile, tie=aggregator._tie
        )
        assert aggregator.full_ranking() == median_full_ranking_batch(profile)
        assert aggregator.partial_ranking() == median_partial_ranking_batch(profile)
        k = (len(aggregator.domain) + 1) // 2
        assert aggregator.top_k(k) == median_top_k_batch(profile, k)

    @pytest.mark.parametrize("tie", TIES)
    def test_snapshots_after_every_add(self, tie):
        profile = _random_profile(seed=21, n=6, m=7)
        aggregator = OnlineMedianAggregator(range(6), tie=tie)
        for upto, ranking in enumerate(profile, start=1):
            aggregator.add(ranking)
            assert aggregator.scores() == median_scores_batch(
                profile[:upto], tie=tie
            )
        assert len(aggregator) == len(profile)

    def test_snapshots_after_interleaved_adds_and_discards(self):
        profile = _random_profile(seed=23, n=5, m=8)
        aggregator = OnlineMedianAggregator(range(5))
        active: list[PartialRanking] = []
        for step, ranking in enumerate(profile):
            aggregator.add(ranking)
            active.append(ranking)
            # query between updates so the cached sorted state is merged
            # incrementally rather than rebuilt from scratch
            self._assert_snapshot(aggregator, active)
            if step % 3 == 2:
                victim = active.pop(0)
                aggregator.discard(victim)
                self._assert_snapshot(aggregator, active)

    def test_duplicate_rankings_add_and_discard_by_value(self):
        sigma = PartialRanking([[0, 1], [2]])
        aggregator = OnlineMedianAggregator(range(3))
        aggregator.add(sigma)
        aggregator.add(sigma)
        assert len(aggregator) == 2
        aggregator.discard(sigma)
        assert len(aggregator) == 1
        assert aggregator.scores() == median_scores_batch([sigma])

    def test_failed_discard_is_a_noop(self):
        sigma = PartialRanking([[0], [1], [2]])
        other = PartialRanking([[2], [1], [0]])
        aggregator = OnlineMedianAggregator(range(3))
        aggregator.add(sigma)
        before = aggregator.scores()
        with pytest.raises(AggregationError, match="not previously added"):
            aggregator.discard(other)
        assert aggregator.scores() == before
        assert len(aggregator) == 1

    def test_errors_preserved(self):
        with pytest.raises(AggregationError, match="must be non-empty"):
            OnlineMedianAggregator([])
        with pytest.raises(AggregationError, match="unknown median tie rule"):
            OnlineMedianAggregator(range(3), tie="median")  # type: ignore[arg-type]
        aggregator = OnlineMedianAggregator(range(3))
        with pytest.raises(AggregationError, match="no rankings to discard"):
            aggregator.discard(PartialRanking([[0, 1, 2]]))
        with pytest.raises(AggregationError, match="no rankings have been added"):
            aggregator.scores()
        with pytest.raises(AggregationError, match="domain differs"):
            aggregator.add(PartialRanking([[0, 1]]))
        aggregator.add(PartialRanking([[0, 1, 2]]))
        with pytest.raises(AggregationError, match="k=4 out of range"):
            aggregator.top_k(4)

    def test_growth_beyond_initial_capacity(self):
        profile = _random_profile(seed=29, n=4, m=20)
        aggregator = OnlineMedianAggregator(range(4))
        for ranking in profile:
            aggregator.add(ranking)
        assert aggregator.scores() == median_scores_batch(profile)


def _resume_remotely(
    payload: bytes, extra: PartialRanking
) -> tuple[dict, dict, int]:
    """Pool worker: unpickle an aggregator, query it, keep aggregating."""
    aggregator = pickle.loads(payload)
    before = aggregator.scores()
    aggregator.add(extra)
    return before, aggregator.scores(), len(aggregator)


class TestOnlinePickle:
    def test_in_process_round_trip(self):
        profile = _random_profile(seed=31, n=5, m=6)
        aggregator = OnlineMedianAggregator(range(5), tie="low")
        for ranking in profile:
            aggregator.add(ranking)
        aggregator.scores()  # populate the sorted cache; it must not pickle stale
        clone = pickle.loads(pickle.dumps(aggregator))
        assert len(clone) == len(aggregator)
        assert clone.domain == aggregator.domain
        assert clone.scores() == aggregator.scores()
        assert clone.full_ranking() == aggregator.full_ranking()
        # the clone stays updatable and bit-for-bit on its own trajectory
        extra = PartialRanking([[4], [3], [2], [1], [0]])
        clone.add(extra)
        assert clone.scores() == median_scores_batch(profile + [extra], tie="low")

    def test_round_trip_of_empty_aggregator(self):
        clone = pickle.loads(pickle.dumps(OnlineMedianAggregator(range(3))))
        assert len(clone) == 0
        clone.add(PartialRanking([[0, 1, 2]]))
        assert clone.scores() == median_scores_batch([PartialRanking([[0, 1, 2]])])

    def test_across_a_real_process_boundary(self):
        profile = _random_profile(seed=37, n=4, m=5)
        aggregator = OnlineMedianAggregator(range(4))
        for ranking in profile:
            aggregator.add(ranking)
        extra = PartialRanking([[0], [1, 2], [3]])
        with ProcessPoolExecutor(max_workers=1) as pool:
            before, after, count = pool.submit(
                _resume_remotely, pickle.dumps(aggregator), extra
            ).result()
        assert before == aggregator.scores()
        assert after == median_scores_batch(profile + [extra])
        assert count == len(profile) + 1


class TestContractsUnderDebug:
    def test_kernels_run_with_live_contracts(self, monkeypatch):
        """Exercise every batch kernel and the online path with the
        runtime contracts enabled (REPRO_DEBUG=1)."""
        monkeypatch.setenv("REPRO_DEBUG", "1")
        profile = _random_profile(seed=41, n=6, m=5)
        weights = _random_weights(0, 5)
        for tie in TIES:
            assert median_scores_batch(profile, tie=tie) == median_scores(
                profile, tie=tie, engine="dict"
            )
        assert median_scores_batch(profile, weights=weights) == median_scores(
            profile, weights=weights, engine="dict"
        )
        assert median_top_k_batch(profile, 3) == median_top_k(profile, 3, engine="dict")
        assert median_full_ranking_batch(profile) == median_full_ranking(
            profile, engine="dict"
        )
        assert median_partial_ranking_batch(profile) == median_partial_ranking(
            profile, engine="dict"
        )
        assert median_fixed_type_batch(profile, (2, 2, 2)) == median_fixed_type(
            profile, (2, 2, 2), engine="dict"
        )
        aggregator = OnlineMedianAggregator(range(6))
        for ranking in profile:
            aggregator.add(ranking)
        assert aggregator.scores() == median_scores_batch(profile)
