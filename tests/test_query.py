"""Tests for declarative preference queries over relations."""

from __future__ import annotations

import pytest

from repro.db.query import AttributePreference, PreferenceQuery
from repro.db.relation import Relation, SchemaError
from repro.db.sources import restaurant_catalog

ROWS = [
    {"id": "r1", "cuisine": "thai", "price": 1, "stars": 4.5, "distance": 1.0},
    {"id": "r2", "cuisine": "thai", "price": 2, "stars": 5.0, "distance": 4.0},
    {"id": "r3", "cuisine": "french", "price": 4, "stars": 3.0, "distance": 12.0},
    {"id": "r4", "cuisine": "mexican", "price": 1, "stars": 4.0, "distance": 2.0},
    {"id": "r5", "cuisine": "thai", "price": 3, "stars": 2.5, "distance": 28.0},
]


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows("restaurants", "id", ROWS)


def _query(k: int = 2) -> PreferenceQuery:
    return PreferenceQuery.build(
        AttributePreference("cuisine", value_order=["thai", "mexican"]),
        AttributePreference("price"),
        AttributePreference("stars", reverse=True),
        AttributePreference("distance", bins=(5.0, 10.0, 20.0)),
        k=k,
    )


class TestAttributePreference:
    def test_binning_maps_to_bin_indices(self):
        preference = AttributePreference("distance", bins=(5.0, 10.0))
        binning = preference.binning()
        assert binning(1.0) == 0
        assert binning(5.0) == 0
        assert binning(7.0) == 1
        assert binning(99.0) == 2

    def test_no_bins_means_no_binning(self):
        assert AttributePreference("price").binning() is None

    def test_rank_produces_partial_ranking(self, relation):
        ranking = AttributePreference("price").rank(relation)
        assert ranking.tied("r1", "r4")


class TestPreferenceQuery:
    def test_compile_yields_one_ranking_per_preference(self, relation):
        rankings = _query().compile(relation)
        assert len(rankings) == 4
        assert all(ranking.domain == relation.keys for ranking in rankings)

    def test_execute_returns_topk_with_access_log(self, relation):
        result = _query(k=2).execute(relation)
        assert len(result.top_items) == 2
        assert result.ranking.is_top_k(2)
        assert result.access_log.num_lists == 4
        assert 1 <= result.access_log.depth <= len(relation)
        assert len(result.ties_per_input) == 4

    def test_the_obvious_winner_wins(self, relation):
        # r1: preferred cuisine, cheapest, near-best stars, closest
        result = _query(k=1).execute(relation)
        assert result.top_items[0] == "r1"

    def test_offline_and_online_agree_on_winner(self, relation):
        query = _query(k=1)
        online = query.execute(relation)
        offline = query.execute_offline(relation)
        assert online.top_items[0] in {
            item for bucket in offline.buckets[:1] for item in bucket
        }

    def test_k_clamped_to_relation_size(self, relation):
        result = PreferenceQuery.build(AttributePreference("price"), k=50).execute(
            relation
        )
        assert len(result.top_items) == len(relation)

    def test_empty_query_rejected(self):
        with pytest.raises(SchemaError):
            PreferenceQuery.build(k=1)

    def test_nonpositive_k_rejected(self):
        with pytest.raises(SchemaError):
            PreferenceQuery.build(AttributePreference("price"), k=0)

    def test_against_synthetic_catalog(self):
        relation = restaurant_catalog(50, seed=1)
        result = PreferenceQuery.build(
            AttributePreference("price"),
            AttributePreference("stars", reverse=True),
            k=5,
        ).execute(relation)
        assert len(result.top_items) == 5
        # ties abound: price has at most 4 distinct values over 50 rows
        assert max(result.ties_per_input) > 5
