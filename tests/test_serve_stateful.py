"""Stateful model-based verification of the serving layer.

Every response from :class:`repro.serve.RankingService` is compared
**bit-for-bit** against a serial in-process model: a plain
``voter -> ranking`` dict per domain, with distances recomputed by the
direct two-ranking metrics and consensus by the offline median
aggregators. The service may batch, cache, shard, snapshot and restore
however it likes — the model knows nothing of any of that, so agreement
on every operation proves the serving machinery is semantically
invisible.

Two drivers share one harness:

* a Hypothesis :class:`~hypothesis.stateful.RuleBasedStateMachine`
  exploring operation interleavings (including snapshot/restore cycles
  and concurrent batched queries), and
* a deterministic scripted session of 500+ operations, the acceptance
  bar for this layer.

Error paths are part of the model: removing an unknown voter, querying
an empty shard, out-of-range ``k`` — whenever the model says "invalid",
the service must raise :class:`~repro.errors.AggregationError`.
"""

from __future__ import annotations

import asyncio
import random
from collections.abc import Coroutine
from typing import Any

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.aggregate.kemeny import kemeny_optimal
from repro.aggregate.median import (
    median_full_ranking,
    median_partial_ranking,
    median_scores,
    median_top_k,
)
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.generators.random import random_bucket_order, resolve_rng
from repro.metrics.footrule import footrule
from repro.metrics.hausdorff import footrule_hausdorff, kendall_hausdorff_counts
from repro.metrics.kendall import kendall
from repro.serve import CONSENSUS_KINDS, RankingService, ServeConfig

# integer-range domains so random_bucket_order(n) draws over exactly them
DOMAINS = (frozenset(range(3)), frozenset(range(5)))
VOTERS = ("alice", "bob", "carol", "dana", "eve")
METRICS = ("kendall", "footrule", "kendall_hausdorff", "footrule_hausdorff")

#: How many snapshots the harness keeps around for restore rules.
_SAVED_LIMIT = 4


def expected_distance(
    sigma: PartialRanking, tau: PartialRanking, metric: str, p: float = 0.5
) -> float:
    """The serial ground truth the batched/cached service must reproduce."""
    if metric == "kendall":
        return kendall(sigma, tau, p)
    if metric == "footrule":
        return footrule(sigma, tau)
    if metric == "kendall_hausdorff":
        return float(kendall_hausdorff_counts(sigma, tau))
    assert metric == "footrule_hausdorff"
    return footrule_hausdorff(sigma, tau)


Model = dict[frozenset, dict[str, PartialRanking]]


class ServeModelHarness:
    """One service instance plus the serial model it must agree with.

    Every method performs one (or, for batches, several) service
    operations *and* the matching model bookkeeping, asserting exact
    equality — including on the error paths. ``operations`` counts how
    many service calls were checked.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.loop = asyncio.new_event_loop()
        self.service = RankingService(
            config if config is not None else ServeConfig(batch_window=0.0, cache_capacity=32)
        )
        self.model: Model = {}
        self.saved: list[tuple[bytes, Model]] = []
        self.operations = 0

    def close(self) -> None:
        self.run(self.service.drain())
        self.loop.close()

    def run(self, coro: Coroutine[Any, Any, Any]) -> Any:
        return self.loop.run_until_complete(coro)

    @staticmethod
    def ranking_for(domain: frozenset, seed: int) -> PartialRanking:
        """A deterministic bucket order over an integer-range domain."""
        return random_bucket_order(len(domain), resolve_rng(seed), tie_bias=0.4)

    # ------------------------------------------------------------------
    # Operations (each checks service vs model)
    # ------------------------------------------------------------------

    def update(self, domain: frozenset, voter: str, ranking: PartialRanking) -> None:
        self.operations += 1
        voters = self.model.setdefault(domain, {})
        expected_replace = voter in voters
        response = self.run(self.service.update(domain, voter, ranking))
        voters[voter] = ranking
        assert response["replaced"] == expected_replace
        assert response["voters"] == len(voters)

    def remove(self, domain: frozenset, voter: str) -> None:
        self.operations += 1
        voters = self.model.get(domain, {})
        if voter not in voters:
            with pytest.raises(AggregationError):
                self.run(self.service.remove(domain, voter))
            return
        response = self.run(self.service.remove(domain, voter))
        del voters[voter]
        assert response["voters"] == len(voters)

    def distance(
        self,
        domain: frozenset,
        sigma: PartialRanking | str,
        tau: PartialRanking | str,
        metric: str = "kendall",
        p: float = 0.5,
    ) -> None:
        """One distance query; ``sigma``/``tau`` may be voter references."""
        self.operations += 1
        voters = self.model.get(domain, {})

        def resolve(value: PartialRanking | str) -> PartialRanking | None:
            return voters.get(value) if isinstance(value, str) else value

        first, second = resolve(sigma), resolve(tau)
        if first is None or second is None:
            with pytest.raises(AggregationError):
                self.run(self.service.distance(domain, sigma, tau, metric=metric, p=p))
            return
        got = self.run(self.service.distance(domain, sigma, tau, metric=metric, p=p))
        assert got == expected_distance(first, second, metric, p)

    def batch_distances(
        self,
        domain: frozenset,
        pairs: list[tuple[PartialRanking, PartialRanking]],
        metric: str = "kendall",
    ) -> None:
        """Concurrent queries through one event-loop tick (coalesced)."""
        self.operations += len(pairs)

        async def gather() -> list[float]:
            return await asyncio.gather(
                *(
                    self.service.distance(domain, sigma, tau, metric=metric)
                    for sigma, tau in pairs
                )
            )

        for value, (sigma, tau) in zip(self.run(gather()), pairs):
            assert value == expected_distance(sigma, tau, metric)

    def consensus(self, domain: frozenset, kind: str, k: int | None = None) -> None:
        self.operations += 1
        voters = self.model.get(domain, {})
        bad_k = kind == "topk" and (k is None or not 0 < k <= len(domain))
        if not voters or bad_k:
            with pytest.raises(AggregationError):
                self.run(self.service.consensus(domain, kind=kind, k=k))
            return
        got = self.run(self.service.consensus(domain, kind=kind, k=k))
        rankings = list(voters.values())
        if kind == "scores":
            assert got == median_scores(rankings)
        elif kind == "full":
            assert got == median_full_ranking(rankings)
        elif kind == "partial":
            assert got == median_partial_ranking(rankings)
        elif kind == "kemeny":
            # the certified-exact consensus: the tiny test domains are
            # always within the per-component DP cap, so the service must
            # answer (never 409) and agree with the offline solver
            expected, _ = kemeny_optimal(rankings)
            assert got == expected
        else:
            assert got == median_top_k(rankings, k)  # type: ignore[arg-type]

    def check_all_consensus(self) -> None:
        """Every consensus kind on every populated domain (post-restore)."""
        for domain, voters in self.model.items():
            if not voters:
                continue
            for kind in CONSENSUS_KINDS:
                self.consensus(domain, kind, k=1 if kind == "topk" else None)

    def snapshot(self) -> None:
        self.operations += 1
        blob = self.service.snapshot()
        self.saved.append((blob, {d: dict(v) for d, v in self.model.items()}))
        del self.saved[:-_SAVED_LIMIT]

    def restore(self, index: int) -> None:
        if not self.saved:
            return
        self.operations += 1
        blob, model = self.saved[index % len(self.saved)]
        self.service.restore(blob)
        self.model = {d: dict(v) for d, v in model.items()}


class ServeStateMachine(RuleBasedStateMachine):
    """Hypothesis-driven interleavings of every serving operation."""

    def __init__(self) -> None:
        super().__init__()
        self.harness = ServeModelHarness()

    def teardown(self) -> None:
        self.harness.close()

    _domain = st.integers(min_value=0, max_value=len(DOMAINS) - 1)
    _voter = st.sampled_from(VOTERS)
    _seed = st.integers(min_value=0, max_value=2**16)
    _metric = st.sampled_from(METRICS)

    @rule(d=_domain, voter=_voter, seed=_seed)
    def update(self, d: int, voter: str, seed: int) -> None:
        domain = DOMAINS[d]
        self.harness.update(domain, voter, self.harness.ranking_for(domain, seed))

    @rule(d=_domain, voter=_voter)
    def remove(self, d: int, voter: str) -> None:
        self.harness.remove(DOMAINS[d], voter)

    @rule(d=_domain, seed=_seed, metric=_metric)
    def distance_literals(self, d: int, seed: int, metric: str) -> None:
        domain = DOMAINS[d]
        sigma = self.harness.ranking_for(domain, seed)
        tau = self.harness.ranking_for(domain, seed + 1)
        self.harness.distance(domain, sigma, tau, metric=metric)

    @rule(d=_domain, voter=_voter, seed=_seed, metric=_metric)
    def distance_voter_reference(self, d: int, voter: str, seed: int, metric: str) -> None:
        domain = DOMAINS[d]
        self.harness.distance(
            domain, voter, self.harness.ranking_for(domain, seed), metric=metric
        )

    @rule(d=_domain, seed=_seed, metric=_metric, count=st.integers(2, 5))
    def distance_batch(self, d: int, seed: int, metric: str, count: int) -> None:
        domain = DOMAINS[d]
        pairs = [
            (
                self.harness.ranking_for(domain, seed + 2 * offset),
                self.harness.ranking_for(domain, seed + 2 * offset + 1),
            )
            for offset in range(count)
        ]
        self.harness.batch_distances(domain, pairs, metric=metric)

    @rule(d=_domain, kind=st.sampled_from(CONSENSUS_KINDS), k=st.integers(0, 6))
    def consensus(self, d: int, kind: str, k: int) -> None:
        self.harness.consensus(DOMAINS[d], kind, k=k if kind == "topk" else None)

    @rule()
    def snapshot(self) -> None:
        self.harness.snapshot()

    @rule(index=st.integers(min_value=0, max_value=_SAVED_LIMIT - 1))
    def restore(self, index: int) -> None:
        self.harness.restore(index)
        self.harness.check_all_consensus()


ServeStateMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)

TestServeStateMachine = ServeStateMachine.TestCase


class TestScriptedSession:
    """The acceptance bar: a deterministic 500+ operation session."""

    def test_five_hundred_operations_bit_for_bit(self):
        rng = random.Random(0x5EED)
        harness = ServeModelHarness()
        try:
            # seed every domain with a few voters so queries have substance
            for domain in DOMAINS:
                for voter in VOTERS[:3]:
                    harness.update(
                        domain, voter, harness.ranking_for(domain, rng.getrandbits(16))
                    )
            while harness.operations < 520:
                op = rng.randrange(10)
                domain = DOMAINS[rng.randrange(len(DOMAINS))]
                if op <= 2:
                    harness.update(
                        domain,
                        rng.choice(VOTERS),
                        harness.ranking_for(domain, rng.getrandbits(16)),
                    )
                elif op == 3:
                    harness.remove(domain, rng.choice(VOTERS))
                elif op <= 5:
                    sigma: PartialRanking | str = (
                        rng.choice(VOTERS)
                        if rng.random() < 0.4
                        else harness.ranking_for(domain, rng.getrandbits(16))
                    )
                    tau = harness.ranking_for(domain, rng.getrandbits(16))
                    harness.distance(domain, sigma, tau, metric=rng.choice(METRICS))
                elif op == 6:
                    pairs = [
                        (
                            harness.ranking_for(domain, rng.getrandbits(16)),
                            harness.ranking_for(domain, rng.getrandbits(16)),
                        )
                        for _ in range(rng.randrange(2, 5))
                    ]
                    harness.batch_distances(domain, pairs, metric=rng.choice(METRICS))
                elif op <= 8:
                    kind = rng.choice(CONSENSUS_KINDS)
                    harness.consensus(
                        domain,
                        kind,
                        k=rng.randrange(0, len(domain) + 2) if kind == "topk" else None,
                    )
                elif rng.random() < 0.5:
                    harness.snapshot()
                else:
                    harness.restore(rng.randrange(_SAVED_LIMIT))
            assert harness.operations >= 500
            harness.check_all_consensus()
        finally:
            harness.close()
