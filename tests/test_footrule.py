"""Unit tests for the footrule metrics F, F_prof."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.partial_ranking import PartialRanking
from repro.errors import DomainMismatchError, InvalidRankingError
from repro.metrics.footrule import footrule, footrule_full, l1_distance
from tests.conftest import bucket_order_pairs


class TestL1Distance:
    def test_basic(self):
        assert l1_distance({"a": 1.0, "b": 2.0}, {"a": 3.0, "b": 2.0}) == 2.0

    def test_domain_mismatch_rejected(self):
        with pytest.raises(DomainMismatchError):
            l1_distance({"a": 1.0}, {"b": 1.0})


class TestFootrule:
    def test_identical(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        assert footrule(sigma, sigma) == 0.0

    def test_worked_example(self):
        sigma = PartialRanking([["a", "b"], ["c"]])  # a,b at 1.5, c at 3
        tau = PartialRanking([["c"], ["a", "b"]])  # c at 1, a,b at 2.5
        assert footrule(sigma, tau) == 1.0 + 1.0 + 2.0

    def test_full_reversal(self):
        sigma = PartialRanking.from_sequence("abcd")
        assert footrule(sigma, sigma.reverse()) == 3 + 1 + 1 + 3

    def test_domain_mismatch_rejected(self):
        with pytest.raises(DomainMismatchError):
            footrule(PartialRanking([["a"]]), PartialRanking([["b"]]))

    @given(bucket_order_pairs())
    def test_symmetry(self, pair):
        sigma, tau = pair
        assert footrule(sigma, tau) == footrule(tau, sigma)

    @given(bucket_order_pairs())
    def test_reversal_invariance(self, pair):
        # |sigma^R - tau^R| = |(n+1-sigma) - (n+1-tau)| = |sigma - tau|
        sigma, tau = pair
        assert footrule(sigma.reverse(), tau.reverse()) == pytest.approx(
            footrule(sigma, tau)
        )

    @given(bucket_order_pairs())
    def test_single_bucket_distance_formula(self, pair):
        # distance from sigma to the all-tied ranking is sum |pos - (n+1)/2|
        sigma, _ = pair
        single = PartialRanking.single_bucket(sigma.domain)
        center = (len(sigma) + 1) / 2
        expected = sum(abs(sigma[item] - center) for item in sigma.domain)
        assert footrule(sigma, single) == pytest.approx(expected)


class TestFootruleFull:
    def test_requires_full_rankings(self):
        partial = PartialRanking([["a", "b"]])
        full = PartialRanking.from_sequence("ab")
        with pytest.raises(InvalidRankingError):
            footrule_full(partial, full)

    def test_agrees_with_footrule_on_full(self):
        sigma = PartialRanking.from_sequence("abc")
        tau = PartialRanking.from_sequence("cba")
        assert footrule_full(sigma, tau) == footrule(sigma, tau)
