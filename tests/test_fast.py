"""Tests for the array-based (numpy) pair counter."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partial_ranking import PartialRanking
from repro.errors import DomainMismatchError, InvalidRankingError
from repro.generators.random import random_bucket_order, resolve_rng
from repro.metrics.fast import (
    count_inversions_array,
    kendall_hausdorff_large,
    kendall_large,
    pair_counts_large,
)
from repro.metrics.hausdorff import kendall_hausdorff_counts
from repro.metrics.kendall import kendall, pair_counts
from tests.conftest import bucket_order_pairs


class TestCountInversionsArray:
    def test_empty_and_singleton(self):
        assert count_inversions_array(np.array([])) == 0
        assert count_inversions_array(np.array([7])) == 0

    def test_sorted_and_reversed(self):
        assert count_inversions_array(np.arange(10)) == 0
        assert count_inversions_array(np.arange(10)[::-1]) == 45

    def test_ties_do_not_count(self):
        assert count_inversions_array(np.array([2, 2, 2, 1])) == 3

    @given(st.lists(st.integers(min_value=0, max_value=12), max_size=64))
    def test_matches_quadratic_definition(self, values):
        arr = np.array(values, dtype=np.int64)
        naive = sum(
            1
            for i in range(len(values))
            for j in range(i + 1, len(values))
            if values[i] > values[j]
        )
        assert count_inversions_array(arr) == naive


class TestPairCountsLarge:
    @given(bucket_order_pairs(max_size=7))
    def test_bitwise_equal_to_fenwick_path(self, pair):
        sigma, tau = pair
        assert pair_counts_large(sigma, tau) == pair_counts(sigma, tau)

    def test_medium_random_cross_check(self):
        rng = resolve_rng(5)
        for tie_bias in (0.0, 0.5, 0.95):
            sigma = random_bucket_order(500, rng, tie_bias=tie_bias)
            tau = random_bucket_order(500, rng, tie_bias=tie_bias)
            assert pair_counts_large(sigma, tau) == pair_counts(sigma, tau)

    def test_domain_mismatch_rejected(self):
        with pytest.raises(DomainMismatchError):
            pair_counts_large(PartialRanking([["a"]]), PartialRanking([["b"]]))


class TestEntryPoints:
    @settings(max_examples=30)
    @given(bucket_order_pairs(max_size=7))
    def test_kendall_large_matches_kendall(self, pair):
        sigma, tau = pair
        for p in (0.0, 0.5, 1.0):
            assert kendall_large(sigma, tau, p) == pytest.approx(kendall(sigma, tau, p))

    @given(bucket_order_pairs(max_size=7))
    def test_hausdorff_large_matches_closed_form(self, pair):
        sigma, tau = pair
        assert kendall_hausdorff_large(sigma, tau) == kendall_hausdorff_counts(
            sigma, tau
        )

    def test_bad_p_rejected(self):
        sigma = PartialRanking([["a", "b"]])
        with pytest.raises(InvalidRankingError):
            kendall_large(sigma, sigma, p=-0.5)
