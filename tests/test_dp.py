"""Tests for the Figure 1 optimal-bucketing dynamic program."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregate.dp import (
    BucketingResult,
    brute_force_bucketing,
    bucketing_cost,
    figure1_boundaries,
    optimal_bucketing,
    optimal_partial_ranking,
)
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.metrics.footrule import l1_distance

half_integral_scores = st.lists(
    st.integers(min_value=0, max_value=24).map(lambda v: v / 2),
    min_size=1,
    max_size=11,
).map(sorted)

real_scores = st.lists(
    st.floats(min_value=0, max_value=20, allow_nan=False),
    min_size=1,
    max_size=11,
).map(sorted)


class TestBucketingCost:
    def test_single_bucket_cost(self):
        # one bucket over [1, 2, 3]: position (0+3+1)/2 = 2
        assert bucketing_cost([1.0, 2.0, 3.0], [0, 3]) == 2.0

    def test_full_segmentation_of_ranks_is_free(self):
        assert bucketing_cost([1.0, 2.0, 3.0], [0, 1, 2, 3]) == 0.0

    def test_bad_boundaries_rejected(self):
        with pytest.raises(AggregationError):
            bucketing_cost([1.0, 2.0], [0, 1])
        with pytest.raises(AggregationError):
            bucketing_cost([1.0, 2.0], [0, 0, 2])
        with pytest.raises(AggregationError):
            bucketing_cost([1.0, 2.0], [1, 2])

    def test_unsorted_scores_rejected(self):
        with pytest.raises(AggregationError):
            bucketing_cost([2.0, 1.0], [0, 2])

    def test_empty_scores_rejected(self):
        with pytest.raises(AggregationError):
            bucketing_cost([], [0, 0])


class TestOptimalBucketing:
    @settings(max_examples=60, deadline=None)
    @given(half_integral_scores)
    def test_matches_bruteforce_on_half_integral(self, values):
        assert optimal_bucketing(values).cost == pytest.approx(
            brute_force_bucketing(values).cost
        )

    @settings(max_examples=60, deadline=None)
    @given(real_scores)
    def test_matches_bruteforce_on_reals(self, values):
        assert optimal_bucketing(values).cost == pytest.approx(
            brute_force_bucketing(values).cost
        )

    @given(half_integral_scores)
    def test_figure1_agrees_with_generic_dp(self, values):
        assert figure1_boundaries(values).cost == pytest.approx(
            optimal_bucketing(values).cost
        )

    def test_figure1_rejects_non_half_integral(self):
        with pytest.raises(AggregationError):
            figure1_boundaries([0.3])

    def test_boundaries_reconstruct_reported_cost(self):
        values = [1.0, 1.0, 2.5, 2.5, 2.5, 6.0]
        result = optimal_bucketing(values)
        assert bucketing_cost(values, result.boundaries) == pytest.approx(result.cost)

    def test_exact_ranks_give_full_segmentation(self):
        result = optimal_bucketing([1.0, 2.0, 3.0, 4.0])
        assert result.cost == 0.0
        assert result.bucket_type == (1, 1, 1, 1)

    def test_identical_scores_give_single_bucket(self):
        # n equal scores at the bucket's own position cost 0 as one bucket
        result = optimal_bucketing([2.5, 2.5, 2.5, 2.5])
        assert result.cost == 0.0
        assert result.bucket_type == (4,)

    def test_unsorted_input_rejected(self):
        with pytest.raises(AggregationError):
            optimal_bucketing([3.0, 1.0])

    def test_result_type_property(self):
        result = BucketingResult(boundaries=(0, 2, 5), cost=1.0)
        assert result.bucket_type == (2, 3)


class TestOptimalPartialRanking:
    def test_l1_optimality_against_all_bucket_orders(self):
        from repro._util import ordered_partitions

        scores = {"a": 1.0, "b": 1.5, "c": 1.5, "d": 4.0}
        f_dagger = optimal_partial_ranking(scores)
        best = l1_distance({x: f_dagger[x] for x in scores}, scores)
        for buckets in ordered_partitions(list(scores)):
            candidate = PartialRanking(buckets)
            cost = l1_distance({x: candidate[x] for x in scores}, scores)
            assert best <= cost + 1e-9

    def test_exact_rank_scores_reproduced_exactly(self):
        scores = {"a": 1.0, "b": 2.0, "c": 3.0}
        assert optimal_partial_ranking(scores) == PartialRanking.from_sequence("abc")

    def test_clustered_scores_form_buckets(self):
        scores = {"a": 1.4, "b": 1.6, "c": 5.0, "d": 5.1}
        result = optimal_partial_ranking(scores)
        assert result.bucket_of("a") == {"a", "b"}
        assert result.bucket_of("c") == {"c", "d"}

    def test_empty_scores_rejected(self):
        with pytest.raises(AggregationError):
            optimal_partial_ranking({})

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=9),
            st.floats(min_value=0, max_value=12, allow_nan=False),
            min_size=1,
            max_size=8,
        )
    )
    def test_output_consistent_with_scores(self, scores):
        """f-dagger never orders against the score function."""
        result = optimal_partial_ranking(scores)
        for x in scores:
            for y in scores:
                if scores[x] < scores[y]:
                    assert result[x] <= result[y]
