"""Edge cases and corner behaviours across modules."""

from __future__ import annotations

import pytest

from repro.aggregate.median import MedianAggregator
from repro.aggregate.medrank import medrank, nra_median
from repro.core.partial_ranking import PartialRanking
from repro.errors import (
    AggregationError,
    DomainMismatchError,
    InvalidRankingError,
    ReproError,
)
from repro.experiments.runner import Table, format_table
from repro.generators.random import random_bucket_order, resolve_rng
from repro.metrics.footrule import footrule
from repro.metrics.hausdorff import footrule_hausdorff, hausdorff_witnesses
from repro.metrics.kendall import kendall, pair_counts
from repro.metrics.reflection import Mirror


class TestEmptyAndSingletonDomains:
    def test_metrics_on_empty_rankings(self):
        empty = PartialRanking([])
        assert kendall(empty, empty) == 0
        assert footrule(empty, empty) == 0
        assert pair_counts(empty, empty).total == 0

    def test_empty_ranking_properties(self):
        empty = PartialRanking([])
        assert len(empty) == 0
        assert empty.is_full  # vacuously: no non-singleton buckets
        assert empty.reverse() == empty
        assert list(empty) == []

    def test_single_item_everything_degenerates_gracefully(self):
        single = PartialRanking([["x"]])
        assert kendall(single, single) == 0
        assert footrule_hausdorff(single, single) == 0
        aggregator = MedianAggregator((single, single))
        assert aggregator.full_ranking() == single
        assert aggregator.partial_ranking() == single


class TestTopKBoundaries:
    def test_top_zero_is_single_bucket(self):
        sigma = PartialRanking.top_k([], "abc")
        assert sigma.type == (3,)
        assert sigma.is_top_k(0)

    def test_top_n_minus_one_is_a_full_ranking(self):
        # the bottom bucket has size 1, so every bucket is a singleton
        sigma = PartialRanking.top_k(["a", "b"], "abc")
        assert sigma.is_top_k(2)
        assert sigma.is_full


class TestSequentialAccessBoundaries:
    def test_medrank_k_equals_n_reads_everything_needed(self):
        rng = resolve_rng(3)
        rankings = [random_bucket_order(6, rng) for _ in range(3)]
        result = medrank(rankings, k=6)
        assert sorted(map(repr, result.winners)) == sorted(
            map(repr, rankings[0].domain)
        )
        assert result.ranking.is_full

    def test_nra_k_equals_n(self):
        rng = resolve_rng(4)
        rankings = [random_bucket_order(5, rng) for _ in range(3)]
        result = nra_median(rankings, k=5)
        assert len(result.winners) == 5

    def test_nra_tie_rules(self):
        rankings = [
            PartialRanking.from_sequence("ab"),
            PartialRanking.from_sequence("ba"),
        ]
        for tie in ("low", "mid", "high"):
            result = nra_median(rankings, k=1, tie=tie)
            assert len(result.winners) == 1

    def test_identical_single_bucket_inputs(self):
        single = PartialRanking.single_bucket("abcd")
        result = medrank([single, single, single], k=2)
        assert len(result.winners) == 2
        certified = nra_median([single, single, single], k=2)
        assert len(certified.winners) == 2


class TestHausdorffWithExplicitRho:
    def test_valid_rho_accepted_and_consistent(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        tau = PartialRanking([["c", "b"], ["a"]])
        rho = PartialRanking.from_sequence("cba")
        witnesses = hausdorff_witnesses(sigma, tau, rho=rho)
        assert witnesses.sigma_1.is_refinement_of(sigma)
        # distances do not depend on the rho choice
        default = footrule_hausdorff(sigma, tau)
        assert footrule_hausdorff(sigma, tau, rho=rho) == default


class TestErrorHierarchy:
    def test_all_library_errors_are_repro_errors(self):
        from repro.db.relation import SchemaError
        from repro.db.cursor import CursorExhausted
        from repro.io import SerializationError
        from repro.metrics.related import UndefinedCorrelationError

        for error_type in (
            InvalidRankingError,
            DomainMismatchError,
            AggregationError,
            SchemaError,
            CursorExhausted,
            SerializationError,
            UndefinedCorrelationError,
        ):
            assert issubclass(error_type, ReproError)

    def test_value_error_compatibility(self):
        # construction errors are also ValueErrors for duck-typed callers
        with pytest.raises(ValueError):
            PartialRanking([[]])


class TestTableEdges:
    def test_empty_rows_render(self):
        table = Table(title="empty", columns=("a",), rows=())
        rendered = format_table(table)
        assert "empty" in rendered and "a" in rendered

    def test_missing_cell_renders_blank(self):
        table = Table(title="t", columns=("a", "b"), rows=({"a": 1},))
        assert format_table(table)


class TestMirrorRepr:
    def test_mirror_is_distinct_from_item(self):
        assert Mirror("a") != "a"
        assert repr(Mirror("a")) == "'a'#"
        assert Mirror(Mirror("a")) != Mirror("a")


class TestCrossDomainErrors:
    def test_every_metric_rejects_mismatched_domains(self):
        from repro.metrics.hausdorff import kendall_hausdorff_counts

        a = PartialRanking([["x"]])
        b = PartialRanking([["y"]])
        for metric in (kendall, footrule, kendall_hausdorff_counts, footrule_hausdorff):
            with pytest.raises(DomainMismatchError):
                metric(a, b)
