"""Tests for the exact Kemeny (Held-Karp) aggregation solver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.aggregate.exact import optimal_full_ranking
from repro.aggregate.kemeny import (
    _held_karp,
    _held_karp_python,
    kemeny_lower_bound,
    kemeny_optimal,
    pair_cost_array,
    pair_cost_matrix,
)
from repro.aggregate.scoring import ScoringScheme, resolve_scheme
from repro.aggregate.median import median_full_ranking
from repro.aggregate.objective import total_distance
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.generators.random import random_bucket_order, resolve_rng


class TestPairCostMatrix:
    def test_costs_reflect_disagreements_and_ties(self):
        rankings = [
            PartialRanking.from_sequence("ab"),
            PartialRanking([["a", "b"]]),
        ]
        items, cost = pair_cost_matrix(rankings)
        i, j = items.index("a"), items.index("b")
        # placing a before b: 0 from the agreeing input, 1/2 from the tie
        assert cost[i][j] == 0.5
        # placing b before a: 1 from the strict input, 1/2 from the tie
        assert cost[j][i] == 1.5

    def test_pair_sum_is_constant(self):
        rng = resolve_rng(3)
        rankings = [random_bucket_order(6, rng) for _ in range(5)]
        items, cost = pair_cost_matrix(rankings)
        n = len(items)
        sums = {
            round(cost[i][j] + cost[j][i], 6)
            for i in range(n)
            for j in range(i + 1, n)
        }
        # each pair's forward+backward cost counts each input once:
        # 1 for strict inputs, 2 * (1/2) for tied ones -> always m
        assert sums == {float(len(rankings))}

    def test_bad_p_rejected(self):
        with pytest.raises(AggregationError):
            pair_cost_matrix([PartialRanking.from_sequence("ab")], p=2.0)


class TestKemenyOptimal:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_factorial_bruteforce(self, seed):
        rng = resolve_rng(seed)
        rankings = [random_bucket_order(5, rng) for _ in range(3)]
        _, dp_cost = kemeny_optimal(rankings)
        _, brute_cost = optimal_full_ranking(rankings, metric="k_prof")
        assert dp_cost == pytest.approx(brute_cost)

    def test_reported_cost_matches_objective(self):
        rng = resolve_rng(9)
        rankings = [random_bucket_order(8, rng) for _ in range(5)]
        best, cost = kemeny_optimal(rankings)
        assert best.is_full
        assert total_distance(best, rankings, "k_prof") == pytest.approx(cost)

    def test_beats_or_ties_median(self):
        rng = resolve_rng(21)
        for _ in range(5):
            rankings = [random_bucket_order(7, rng) for _ in range(5)]
            _, exact_cost = kemeny_optimal(rankings)
            median_cost = total_distance(
                median_full_ranking(rankings), rankings, "k_prof"
            )
            assert exact_cost <= median_cost + 1e-9

    def test_unanimous_inputs_reproduced(self):
        sigma = PartialRanking.from_sequence("dbca")
        best, cost = kemeny_optimal([sigma, sigma, sigma])
        assert best == sigma
        assert cost == 0.0

    def test_monolithic_size_guard(self):
        # the monolithic DP still refuses n > 16 outright ...
        rankings = [PartialRanking.from_sequence(range(17))]
        with pytest.raises(AggregationError):
            kemeny_optimal(rankings, decompose=False)

    def test_decomposition_lifts_cap_on_ordered_input(self):
        # ... but the default decomposed path condenses the unanimous
        # order into 17 singleton components and solves it instantly
        rankings = [PartialRanking.from_sequence(range(17))]
        best, cost = kemeny_optimal(rankings)
        assert best == rankings[0]
        assert cost == 0.0

    def test_decomposed_path_refuses_one_big_scc(self):
        # rotations of the same order produce a single dominance SCC
        # spanning all n items: no decomposition helps, so the default
        # path must refuse just like the monolithic solver
        n = 20
        base = list(range(n))
        rankings = [
            PartialRanking.from_sequence(base[shift:] + base[:shift])
            for shift in (0, 1, 2)
        ]
        with pytest.raises(AggregationError):
            kemeny_optimal(rankings)

    def test_condorcet_cycle_resolved_optimally(self):
        # the classical 3-voter cycle: a>b>c, b>c>a, c>a>b
        rankings = [
            PartialRanking.from_sequence("abc"),
            PartialRanking.from_sequence("bca"),
            PartialRanking.from_sequence("cab"),
        ]
        _, cost = kemeny_optimal(rankings)
        # by symmetry every full ranking costs 4 here: each voter's own
        # order disagrees with each other voter on exactly 2 pairs; the
        # pairwise lower bound of 3 is unattainable because of the cycle
        assert cost == 4.0
        assert kemeny_lower_bound(rankings) == 3.0


class TestScoringScheme:
    def test_kendall_scheme_matches_scalar_p(self):
        rng = resolve_rng(7)
        rankings = [random_bucket_order(6, rng, tie_bias=0.4) for _ in range(4)]
        _, scalar = pair_cost_array(rankings, p=0.25)
        _, schemed = pair_cost_array(
            rankings, scheme=ScoringScheme.kendall(0.25)
        )
        assert np.array_equal(scalar, schemed)

    def test_scheme_and_conflicting_p_rejected(self):
        with pytest.raises(AggregationError):
            pair_cost_array(
                [PartialRanking.from_sequence("ab")],
                p=0.25,
                scheme=ScoringScheme.kendall(0.75),
            )

    def test_resolve_scheme_defaults_to_kendall(self):
        scheme = resolve_scheme(0.25, None)
        assert scheme == ScoringScheme.kendall(0.25)
        assert scheme.is_kendall

    def test_invalid_penalties_rejected(self):
        with pytest.raises(AggregationError):
            ScoringScheme(disagree=-1.0)
        with pytest.raises(AggregationError):
            ScoringScheme(tie=float("nan"))
        with pytest.raises(AggregationError):
            ScoringScheme.kendall(2.0)

    def test_non_kendall_scheme_changes_the_matrix(self):
        # rewarding agreement (agree > 0) charges the *winning* order too
        rankings = [
            PartialRanking.from_sequence("ab"),
            PartialRanking.from_sequence("ab"),
        ]
        scheme = ScoringScheme(agree=0.25, disagree=1.0, tie=0.5)
        items, cost = pair_cost_array(rankings, scheme=scheme)
        i, j = items.index("a"), items.index("b")
        assert cost[i, j] == pytest.approx(0.5)  # 2 inputs agree, 0.25 each
        assert cost[j, i] == pytest.approx(2.0)  # 2 strict disagreements

    def test_optimal_accepts_scheme_passthrough(self):
        rng = resolve_rng(11)
        rankings = [random_bucket_order(6, rng, tie_bias=0.3) for _ in range(3)]
        via_p = kemeny_optimal(rankings, p=0.25)
        via_scheme = kemeny_optimal(rankings, scheme=ScoringScheme.kendall(0.25))
        assert via_p == via_scheme


class TestPairCostArray:
    def test_matches_list_wrapper(self):
        rng = resolve_rng(5)
        rankings = [random_bucket_order(7, rng, tie_bias=0.3) for _ in range(4)]
        items_a, array = pair_cost_array(rankings)
        items_l, lists = pair_cost_matrix(rankings)
        assert items_a == items_l
        assert array.tolist() == lists

    def test_diagonal_is_zero(self):
        rng = resolve_rng(6)
        rankings = [random_bucket_order(5, rng) for _ in range(3)]
        _, cost = pair_cost_array(rankings)
        assert not np.diag(cost).any()


class TestHeldKarpVectorized:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_bit_identical_to_python_reference(self, seed):
        rng = resolve_rng(seed)
        rankings = [random_bucket_order(8, rng, tie_bias=0.4) for _ in range(4)]
        _, cost = pair_cost_array(rankings)
        n = cost.shape[0]
        vec_order, vec_value = _held_karp(cost, n)
        ref_order, ref_value = _held_karp_python(cost, n)
        # dyadic penalties make every partial sum exact, so the orders
        # and objectives must agree bit-for-bit, ties included
        assert vec_order == ref_order
        assert vec_value == ref_value


class TestLowerBound:
    def test_lower_bound_never_exceeds_optimum(self):
        rng = resolve_rng(33)
        for _ in range(10):
            rankings = [random_bucket_order(7, rng) for _ in range(4)]
            bound = kemeny_lower_bound(rankings)
            _, cost = kemeny_optimal(rankings)
            assert bound <= cost + 1e-9

    def test_tight_on_acyclic_majority(self):
        rankings = [
            PartialRanking.from_sequence("abcd"),
            PartialRanking.from_sequence("abcd"),
            PartialRanking.from_sequence("dcba"),
        ]
        bound = kemeny_lower_bound(rankings)
        _, cost = kemeny_optimal(rankings)
        assert bound == pytest.approx(cost)
