"""Tests for the exact Kemeny (Held-Karp) aggregation solver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregate.exact import optimal_full_ranking
from repro.aggregate.kemeny import (
    kemeny_lower_bound,
    kemeny_optimal,
    pair_cost_matrix,
)
from repro.aggregate.median import median_full_ranking
from repro.aggregate.objective import total_distance
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.generators.random import random_bucket_order, resolve_rng


class TestPairCostMatrix:
    def test_costs_reflect_disagreements_and_ties(self):
        rankings = [
            PartialRanking.from_sequence("ab"),
            PartialRanking([["a", "b"]]),
        ]
        items, cost = pair_cost_matrix(rankings)
        i, j = items.index("a"), items.index("b")
        # placing a before b: 0 from the agreeing input, 1/2 from the tie
        assert cost[i][j] == 0.5
        # placing b before a: 1 from the strict input, 1/2 from the tie
        assert cost[j][i] == 1.5

    def test_pair_sum_is_constant(self):
        rng = resolve_rng(3)
        rankings = [random_bucket_order(6, rng) for _ in range(5)]
        items, cost = pair_cost_matrix(rankings)
        n = len(items)
        sums = {
            round(cost[i][j] + cost[j][i], 6)
            for i in range(n)
            for j in range(i + 1, n)
        }
        # each pair's forward+backward cost counts each input once:
        # 1 for strict inputs, 2 * (1/2) for tied ones -> always m
        assert sums == {float(len(rankings))}

    def test_bad_p_rejected(self):
        with pytest.raises(AggregationError):
            pair_cost_matrix([PartialRanking.from_sequence("ab")], p=2.0)


class TestKemenyOptimal:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_factorial_bruteforce(self, seed):
        rng = resolve_rng(seed)
        rankings = [random_bucket_order(5, rng) for _ in range(3)]
        _, dp_cost = kemeny_optimal(rankings)
        _, brute_cost = optimal_full_ranking(rankings, metric="k_prof")
        assert dp_cost == pytest.approx(brute_cost)

    def test_reported_cost_matches_objective(self):
        rng = resolve_rng(9)
        rankings = [random_bucket_order(8, rng) for _ in range(5)]
        best, cost = kemeny_optimal(rankings)
        assert best.is_full
        assert total_distance(best, rankings, "k_prof") == pytest.approx(cost)

    def test_beats_or_ties_median(self):
        rng = resolve_rng(21)
        for _ in range(5):
            rankings = [random_bucket_order(7, rng) for _ in range(5)]
            _, exact_cost = kemeny_optimal(rankings)
            median_cost = total_distance(
                median_full_ranking(rankings), rankings, "k_prof"
            )
            assert exact_cost <= median_cost + 1e-9

    def test_unanimous_inputs_reproduced(self):
        sigma = PartialRanking.from_sequence("dbca")
        best, cost = kemeny_optimal([sigma, sigma, sigma])
        assert best == sigma
        assert cost == 0.0

    def test_size_guard(self):
        rankings = [PartialRanking.from_sequence(range(17))]
        with pytest.raises(AggregationError):
            kemeny_optimal(rankings)

    def test_condorcet_cycle_resolved_optimally(self):
        # the classical 3-voter cycle: a>b>c, b>c>a, c>a>b
        rankings = [
            PartialRanking.from_sequence("abc"),
            PartialRanking.from_sequence("bca"),
            PartialRanking.from_sequence("cab"),
        ]
        _, cost = kemeny_optimal(rankings)
        # by symmetry every full ranking costs 4 here: each voter's own
        # order disagrees with each other voter on exactly 2 pairs; the
        # pairwise lower bound of 3 is unattainable because of the cycle
        assert cost == 4.0
        assert kemeny_lower_bound(rankings) == 3.0


class TestLowerBound:
    def test_lower_bound_never_exceeds_optimum(self):
        rng = resolve_rng(33)
        for _ in range(10):
            rankings = [random_bucket_order(7, rng) for _ in range(4)]
            bound = kemeny_lower_bound(rankings)
            _, cost = kemeny_optimal(rankings)
            assert bound <= cost + 1e-9

    def test_tight_on_acyclic_majority(self):
        rankings = [
            PartialRanking.from_sequence("abcd"),
            PartialRanking.from_sequence("abcd"),
            PartialRanking.from_sequence("dcba"),
        ]
        bound = kemeny_lower_bound(rankings)
        _, cost = kemeny_optimal(rankings)
        assert bound == pytest.approx(cost)
