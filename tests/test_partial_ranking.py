"""Unit tests for the PartialRanking value type."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.partial_ranking import PartialRanking
from repro.errors import DomainMismatchError, InvalidRankingError
from tests.conftest import bucket_orders


class TestConstruction:
    def test_positions_follow_paper_definition(self):
        sigma = PartialRanking([["a"], ["b", "c"], ["d", "e", "f"]])
        assert sigma["a"] == 1.0
        assert sigma["b"] == sigma["c"] == 2.5
        assert sigma["d"] == sigma["e"] == sigma["f"] == 5.0

    def test_full_ranking_positions_are_ranks(self):
        sigma = PartialRanking.from_sequence("abcd")
        assert [sigma[ch] for ch in "abcd"] == [1.0, 2.0, 3.0, 4.0]

    def test_empty_bucket_rejected(self):
        with pytest.raises(InvalidRankingError):
            PartialRanking([["a"], []])

    def test_duplicate_item_rejected(self):
        with pytest.raises(InvalidRankingError):
            PartialRanking([["a"], ["a", "b"]])

    def test_duplicate_within_bucket_collapses(self):
        # frozenset construction deduplicates within a bucket
        sigma = PartialRanking([["a", "a"], ["b"]])
        assert len(sigma) == 2

    def test_unhashable_item_rejected(self):
        with pytest.raises(InvalidRankingError):
            PartialRanking([[["unhashable-list"]]])

    def test_no_buckets_means_empty_domain(self):
        sigma = PartialRanking([])
        assert len(sigma) == 0
        assert sigma.buckets == ()

    def test_mixed_item_types(self):
        sigma = PartialRanking([[1, "a"], [(2, 3)]])
        assert sigma[1] == sigma["a"] == 1.5
        assert sigma[(2, 3)] == 3.0


class TestFromScores:
    def test_groups_equal_scores(self):
        sigma = PartialRanking.from_scores({"a": 2, "b": 1, "c": 2})
        assert sigma.buckets == (frozenset({"b"}), frozenset({"a", "c"}))

    def test_reverse_ranks_high_scores_first(self):
        sigma = PartialRanking.from_scores({"a": 1, "b": 3}, reverse=True)
        assert sigma.ahead("b", "a")

    def test_empty_scores_rejected(self):
        with pytest.raises(InvalidRankingError):
            PartialRanking.from_scores({})

    def test_incomparable_scores_rejected(self):
        with pytest.raises(InvalidRankingError):
            PartialRanking.from_scores({"a": 1, "b": "one"})


class TestTopK:
    def test_type_of_top_k(self):
        sigma = PartialRanking.top_k(["a", "b"], "abcde")
        assert sigma.type == (1, 1, 3)
        assert sigma.is_top_k(2)

    def test_top_k_of_whole_domain_is_full(self):
        sigma = PartialRanking.top_k(list("abc"), "abc")
        assert sigma.is_full
        assert sigma.is_top_k(3)

    def test_duplicates_rejected(self):
        with pytest.raises(InvalidRankingError):
            PartialRanking.top_k(["a", "a"], "abc")

    def test_items_outside_domain_rejected(self):
        with pytest.raises(InvalidRankingError):
            PartialRanking.top_k(["z"], "abc")

    def test_is_top_k_rejects_wrong_shape(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        assert not sigma.is_top_k(1)
        assert not sigma.is_top_k(5)

    def test_single_bucket(self):
        sigma = PartialRanking.single_bucket("abc")
        assert sigma.type == (3,)
        assert sigma.is_top_k(0)


class TestAccessors:
    def test_domain_and_len(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        assert sigma.domain == {"a", "b", "c"}
        assert len(sigma) == 3
        assert "a" in sigma
        assert "z" not in sigma

    def test_missing_item_raises_keyerror(self):
        sigma = PartialRanking([["a"]])
        with pytest.raises(KeyError):
            sigma["z"]
        with pytest.raises(KeyError):
            sigma.bucket_index("z")

    def test_bucket_of_and_index(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        assert sigma.bucket_of("a") == {"a", "b"}
        assert sigma.bucket_index("c") == 1

    def test_position_alias(self):
        sigma = PartialRanking([["x"]])
        assert sigma.position("x") == sigma["x"] == 1.0

    def test_positions_returns_copy(self):
        sigma = PartialRanking([["a"]])
        positions = sigma.positions
        positions["a"] = 99.0
        assert sigma["a"] == 1.0

    def test_items_in_order_is_deterministic(self):
        sigma = PartialRanking([["b", "a"], ["c"]])
        assert sigma.items_in_order() == ["a", "b", "c"]
        assert list(iter(sigma)) == ["a", "b", "c"]

    def test_ahead_and_tied(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        assert sigma.tied("a", "b")
        assert sigma.ahead("a", "c")
        assert not sigma.ahead("c", "a")


class TestReverse:
    def test_positions_satisfy_reversal_identity(self):
        sigma = PartialRanking([["a"], ["b", "c"], ["d"]])
        reverse = sigma.reverse()
        n = len(sigma)
        for item in sigma.domain:
            assert reverse[item] == n + 1 - sigma[item]

    def test_reverse_buckets_are_reversed(self):
        sigma = PartialRanking([["a"], ["b", "c"]])
        assert sigma.reverse().buckets == (frozenset({"b", "c"}), frozenset({"a"}))

    @given(bucket_orders())
    def test_reverse_is_involution(self, sigma):
        assert sigma.reverse().reverse() == sigma


class TestRefinementRelation:
    def test_refines_itself(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        assert sigma.is_refinement_of(sigma)

    def test_full_refines_partial(self):
        partial = PartialRanking([["a", "b"], ["c"]])
        full = PartialRanking.from_sequence("bac")
        assert full.is_refinement_of(partial)

    def test_order_violation_is_not_refinement(self):
        partial = PartialRanking([["a"], ["b"]])
        swapped = PartialRanking.from_sequence("ba")
        assert not swapped.is_refinement_of(partial)

    def test_bucket_split_across_is_not_refinement(self):
        tau = PartialRanking([["a", "b"], ["c", "d"]])
        sigma = PartialRanking([["a", "c"], ["b", "d"]])
        assert not sigma.is_refinement_of(tau)

    def test_different_domain_is_not_refinement(self):
        assert not PartialRanking([["a"]]).is_refinement_of(PartialRanking([["b"]]))

    def test_everything_refines_single_bucket(self):
        single = PartialRanking.single_bucket("abc")
        sigma = PartialRanking([["c"], ["a", "b"]])
        assert sigma.is_refinement_of(single)
        assert not single.is_refinement_of(sigma)


class TestRefinedBy:
    def test_ties_broken_by_tau(self):
        sigma = PartialRanking([["a", "b", "c"]])
        tau = PartialRanking([["c"], ["a", "b"]])
        refined = sigma.refined_by(tau)
        assert refined.buckets == (frozenset({"c"}), frozenset({"a", "b"}))

    def test_existing_order_preserved(self):
        sigma = PartialRanking([["a"], ["b", "c"]])
        tau = PartialRanking.from_sequence("cba")
        refined = sigma.refined_by(tau)
        assert refined.items_in_order() == ["a", "c", "b"]

    def test_domain_mismatch_raises(self):
        with pytest.raises(DomainMismatchError):
            PartialRanking([["a"]]).refined_by(PartialRanking([["b"]]))

    @given(bucket_orders(max_size=6))
    def test_refinement_by_self_is_identity(self, sigma):
        assert sigma.refined_by(sigma) == sigma


class TestRestriction:
    def test_restriction_preserves_order(self):
        sigma = PartialRanking([["a", "b"], ["c"], ["d"]])
        restricted = sigma.restricted_to({"b", "d"})
        assert restricted.buckets == (frozenset({"b"}), frozenset({"d"}))

    def test_restriction_to_unknown_items_raises(self):
        with pytest.raises(InvalidRankingError):
            PartialRanking([["a"]]).restricted_to({"z"})

    def test_restriction_to_empty_raises(self):
        with pytest.raises(InvalidRankingError):
            PartialRanking([["a"]]).restricted_to(set())


class TestValueSemantics:
    def test_equality_ignores_bucket_input_order(self):
        assert PartialRanking([["b", "a"]]) == PartialRanking([["a", "b"]])

    def test_inequality_on_different_orders(self):
        assert PartialRanking([["a"], ["b"]]) != PartialRanking([["b"], ["a"]])

    def test_not_equal_to_other_types(self):
        assert PartialRanking([["a"]]) != "a"

    def test_hash_consistency(self):
        a = PartialRanking([["a", "b"], ["c"]])
        b = PartialRanking([["b", "a"], ["c"]])
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_repr_is_readable(self):
        sigma = PartialRanking([["b", "a"], ["c"]])
        assert repr(sigma) == "PartialRanking['a', 'b' | 'c']"


class TestTypeProperty:
    def test_type_sequence(self):
        assert PartialRanking([["a"], ["b", "c"]]).type == (1, 2)

    def test_full_flag(self):
        assert PartialRanking.from_sequence("ab").is_full
        assert not PartialRanking([["a", "b"]]).is_full

    @given(bucket_orders())
    def test_type_sums_to_domain_size(self, sigma):
        assert sum(sigma.type) == len(sigma)

    @given(bucket_orders())
    def test_positions_are_half_integral(self, sigma):
        for item in sigma.domain:
            assert (2 * sigma[item]) == int(2 * sigma[item])
