"""Tests for the related-work correlation measures (§ Related work)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.partial_ranking import PartialRanking
from repro.metrics.footrule import footrule
from repro.metrics.kendall import kendall_full
from repro.metrics.related import (
    UndefinedCorrelationError,
    baggerly_footrule,
    goodman_kruskal_gamma,
    kendall_tau_a,
    kendall_tau_b,
    normalized_baggerly_footrule,
    spearman_rho,
)
from tests.conftest import bucket_order_pairs, full_rankings


class TestTauA:
    def test_identity_and_reversal(self):
        sigma = PartialRanking.from_sequence("abcd")
        assert kendall_tau_a(sigma, sigma) == 1.0
        assert kendall_tau_a(sigma, sigma.reverse()) == -1.0

    def test_affine_relation_to_kendall_distance(self):
        sigma = PartialRanking.from_sequence("abcde")
        tau = PartialRanking.from_sequence("baced")
        n = 5
        expected = 1 - 4 * kendall_full(sigma, tau) / (n * (n - 1))
        assert kendall_tau_a(sigma, tau) == pytest.approx(expected)

    def test_singleton_domain_undefined(self):
        single = PartialRanking([["x"]])
        with pytest.raises(UndefinedCorrelationError):
            kendall_tau_a(single, single)


class TestTauB:
    def test_identity_on_tied_data(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        assert kendall_tau_b(sigma, sigma) == 1.0

    def test_all_tied_is_undefined(self):
        single_bucket = PartialRanking.single_bucket("abc")
        full = PartialRanking.from_sequence("abc")
        with pytest.raises(UndefinedCorrelationError):
            kendall_tau_b(single_bucket, full)

    @given(bucket_order_pairs(min_size=2))
    def test_range(self, pair):
        sigma, tau = pair
        try:
            value = kendall_tau_b(sigma, tau)
        except UndefinedCorrelationError:
            return
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    @given(full_rankings(min_size=2))
    def test_matches_tau_a_without_ties(self, sigma):
        tau = sigma.reverse()
        assert kendall_tau_b(sigma, tau) == pytest.approx(kendall_tau_a(sigma, tau))


class TestGamma:
    def test_the_papers_objection(self):
        """Gamma is undefined whenever every pair is tied somewhere —
        e.g. against a constant attribute (single bucket)."""
        sigma = PartialRanking.single_bucket("abcd")
        tau = PartialRanking.from_sequence("abcd")
        with pytest.raises(UndefinedCorrelationError):
            goodman_kruskal_gamma(sigma, tau)
        # two-element version from the module docstring
        with pytest.raises(UndefinedCorrelationError):
            goodman_kruskal_gamma(
                PartialRanking([["a", "b"]]), PartialRanking.from_sequence("ab")
            )

    def test_defined_when_some_pair_is_strict_in_both(self):
        sigma = PartialRanking([["a"], ["b"], ["c"]])
        tau = PartialRanking([["a", "b"], ["c"]])
        assert goodman_kruskal_gamma(sigma, tau) == 1.0

    def test_ignores_ties_entirely(self):
        # adding tied pairs never changes gamma; the metrics DO change
        sigma = PartialRanking.from_sequence("ab")
        tau = PartialRanking.from_sequence("ab")
        assert goodman_kruskal_gamma(sigma, tau) == 1.0

    @given(bucket_order_pairs(min_size=2))
    def test_range_when_defined(self, pair):
        sigma, tau = pair
        try:
            value = goodman_kruskal_gamma(sigma, tau)
        except UndefinedCorrelationError:
            return
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestSpearmanRho:
    def test_identity_and_reversal(self):
        sigma = PartialRanking.from_sequence("abcd")
        assert spearman_rho(sigma, sigma) == pytest.approx(1.0)
        assert spearman_rho(sigma, sigma.reverse()) == pytest.approx(-1.0)

    def test_matches_scipy_on_tied_data(self):
        from scipy.stats import spearmanr

        sigma = PartialRanking([["a", "b"], ["c"], ["d", "e"]])
        tau = PartialRanking([["c"], ["a"], ["b", "e"], ["d"]])
        items = sorted(sigma.domain)
        ours = spearman_rho(sigma, tau)
        theirs = spearmanr(
            [sigma[x] for x in items], [tau[x] for x in items]
        ).statistic
        assert ours == pytest.approx(float(theirs))

    def test_all_tied_is_undefined(self):
        single = PartialRanking.single_bucket("abc")
        full = PartialRanking.from_sequence("abc")
        with pytest.raises(UndefinedCorrelationError):
            spearman_rho(single, full)


class TestBaggerly:
    def test_equals_f_prof(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        tau = PartialRanking([["c"], ["a", "b"]])
        assert baggerly_footrule(sigma, tau) == footrule(sigma, tau)

    @given(bucket_order_pairs())
    def test_normalized_is_in_unit_interval(self, pair):
        sigma, tau = pair
        value = normalized_baggerly_footrule(sigma, tau)
        assert 0.0 <= value <= 1.0 + 1e-9

    def test_normalized_hits_one_at_reversal(self):
        sigma = PartialRanking.from_sequence("abcd")
        assert normalized_baggerly_footrule(sigma, sigma.reverse()) == 1.0
