"""Tests for the brute-force enumeration oracles."""

from __future__ import annotations

import pytest

from repro.aggregate.exact import (
    all_full_rankings,
    all_partial_rankings,
    all_top_k_lists,
    optimal_full_ranking,
    optimal_partial_ranking_bruteforce,
    optimal_top_k,
)
from repro.aggregate.objective import total_distance
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.generators.random import random_bucket_order, resolve_rng


class TestEnumerations:
    def test_full_ranking_count(self):
        assert sum(1 for _ in all_full_rankings("abcd")) == 24

    def test_partial_ranking_count_is_fubini(self):
        assert sum(1 for _ in all_partial_rankings("abc")) == 13
        assert sum(1 for _ in all_partial_rankings("abcd")) == 75

    def test_top_k_count(self):
        # 4 items, k=2: 4*3 ordered pairs
        assert sum(1 for _ in all_top_k_lists("abcd", 2)) == 12

    def test_top_k_bad_k(self):
        with pytest.raises(AggregationError):
            list(all_top_k_lists("ab", 3))

    def test_enumeration_guard(self):
        with pytest.raises(AggregationError):
            list(all_full_rankings(range(12)))

    def test_shapes(self):
        for sigma in all_top_k_lists("abcd", 2):
            assert sigma.is_top_k(2)
        for sigma in all_full_rankings("abc"):
            assert sigma.is_full


class TestOptima:
    def test_optima_are_no_worse_than_samples(self):
        rng = resolve_rng(5)
        rankings = [random_bucket_order(4, rng) for _ in range(3)]
        _, full_cost = optimal_full_ranking(rankings)
        _, partial_cost = optimal_partial_ranking_bruteforce(rankings)
        _, topk_cost = optimal_top_k(rankings, 2)
        # partial optimum can only improve on the full optimum
        assert partial_cost <= full_cost + 1e-9
        for sigma in rankings:
            assert partial_cost <= total_distance(sigma, rankings, "f_prof") + 1e-9
        assert topk_cost >= 0

    def test_unanimous_input_is_optimal(self):
        sigma = PartialRanking([["a"], ["b", "c"]])
        best, cost = optimal_partial_ranking_bruteforce([sigma, sigma])
        assert best == sigma
        assert cost == 0.0

    def test_custom_metric(self):
        rankings = [
            PartialRanking.from_sequence("abc"),
            PartialRanking.from_sequence("acb"),
        ]
        best, cost = optimal_full_ranking(rankings, metric="k_prof")
        assert cost == 1.0  # one disagreement is unavoidable
        assert best in rankings
