"""Tests for the SCC-condensed exact Kemeny solver.

The decomposition's soundness claim (THEORY.md, "Decomposition
soundness") is that concatenating per-component optima along the
condensation order is a *global* ``K^(p)`` optimum. These tests pin that
claim against the monolithic Held-Karp solver across random, Mallows and
adversarial-tie profiles, exercise the structural fixtures (single SCC,
fully ordered, mixed), and cover the heuristic ``exact=False`` fallback
plus the observability counters the analyzers cross-reference.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import metrics, spans
from repro.aggregate.decompose import (
    DecomposedResult,
    dominance_components,
    kemeny_decomposed,
)
from repro.aggregate.kemeny import kemeny_optimal, pair_cost_array
from repro.aggregate.objective import total_distance
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.generators.random import random_bucket_order, resolve_rng
from repro.generators.workloads import (
    adversarial_profile_workload,
    banded_profile_workload,
    mallows_profile_workload,
)


def _rotation_profile(n: int, shifts=(0, 1, 2)) -> list[PartialRanking]:
    """Rotations of one order: a single dominance SCC spanning all items."""
    base = list(range(n))
    return [
        PartialRanking.from_sequence(base[shift:] + base[:shift])
        for shift in shifts
    ]


class TestMatchesMonolithic:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=9),
    )
    def test_random_profiles(self, seed, n):
        rng = resolve_rng(seed)
        rankings = [random_bucket_order(n, rng, tie_bias=0.4) for _ in range(4)]
        result = kemeny_decomposed(rankings, require_exact=True)
        _, monolithic = kemeny_optimal(rankings, decompose=False)
        assert result.exact
        # dyadic p=1/2 keeps every partial sum exact -> equality, not approx
        assert result.objective == monolithic

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_mallows_profiles(self, seed):
        workload = mallows_profile_workload(n=8, m=5, phi=0.4, seed=seed)
        result = kemeny_decomposed(workload.rankings, require_exact=True)
        _, monolithic = kemeny_optimal(workload.rankings, decompose=False)
        assert result.objective == monolithic

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_adversarial_tie_profiles(self, seed):
        workload = adversarial_profile_workload(n=7, seed=seed)
        result = kemeny_decomposed(workload.rankings, require_exact=True)
        _, monolithic = kemeny_optimal(workload.rankings, decompose=False)
        assert result.objective == monolithic

    def test_reported_objective_matches_reevaluation(self):
        rng = resolve_rng(4)
        rankings = [random_bucket_order(9, rng, tie_bias=0.3) for _ in range(5)]
        result = kemeny_decomposed(rankings)
        reevaluated = total_distance(result.ranking, rankings, "k_prof")
        assert reevaluated == pytest.approx(result.objective)


class TestStructuralFixtures:
    def test_single_scc_condorcet_cycle(self):
        rankings = [
            PartialRanking.from_sequence("abc"),
            PartialRanking.from_sequence("bca"),
            PartialRanking.from_sequence("cab"),
        ]
        result = kemeny_decomposed(rankings)
        assert result.components == (("a", "b", "c"),)
        assert result.largest_component == 3
        assert result.exact
        assert result.objective == 4.0
        assert result.lower_bound == 3.0

    def test_fully_ordered_profile_gives_singletons(self):
        sigma = PartialRanking.from_sequence(range(20))
        result = kemeny_decomposed([sigma, sigma])
        assert len(result.components) == 20
        assert result.largest_component == 1
        assert result.exact
        assert result.ranking == sigma
        assert result.objective == 0.0
        # singleton components never enter the DP
        assert result.dp_states == 0

    def test_mixed_banded_profile(self):
        workload = banded_profile_workload(n=40, m=5, band=5, seed=2, tie_bias=0.3)
        result = kemeny_decomposed(workload.rankings, require_exact=True)
        assert result.exact
        assert result.largest_component <= 5
        assert len(result.components) >= 40 // 5
        # components partition the domain
        flattened = sorted(item for comp in result.components for item in comp)
        assert flattened == sorted(range(40))

    def test_components_follow_condensation_order(self):
        rng = resolve_rng(12)
        rankings = [random_bucket_order(8, rng, tie_bias=0.3) for _ in range(5)]
        items, cost = pair_cost_array(rankings)
        slot = {item: index for index, item in enumerate(items)}
        result = kemeny_decomposed(rankings)
        for earlier_pos in range(len(result.components)):
            for later_pos in range(earlier_pos + 1, len(result.components)):
                for x in result.components[earlier_pos]:
                    for y in result.components[later_pos]:
                        # no later item may strictly dominate an earlier one
                        ahead = float(cost[slot[x], slot[y]])
                        behind = float(cost[slot[y], slot[x]])
                        assert ahead <= behind

    def test_dominance_components_on_cycle_matrix(self):
        rankings = _rotation_profile(6)
        _, cost = pair_cost_array(rankings)
        components = dominance_components(cost)
        assert len(components) == 1
        assert components[0] == list(range(6))


class TestFallback:
    def test_require_exact_refuses_big_scc(self):
        rankings = _rotation_profile(8)
        with pytest.raises(AggregationError, match="strongly-connected"):
            kemeny_decomposed(rankings, max_exact=4, require_exact=True)

    def test_heuristic_fallback_reports_inexact(self):
        rankings = _rotation_profile(8)
        result = kemeny_decomposed(rankings, max_exact=4)
        assert not result.exact
        assert result.ranking.is_full
        assert result.objective >= result.lower_bound - 1e-9
        # the heuristic never enters the DP for the oversized component
        assert result.dp_states == 0
        reevaluated = total_distance(result.ranking, rankings, "k_prof")
        assert reevaluated == pytest.approx(result.objective)

    def test_heuristic_close_to_exact_on_small_instances(self):
        rng = resolve_rng(3)
        for _ in range(5):
            rankings = [random_bucket_order(8, rng, tie_bias=0.4) for _ in range(5)]
            forced = kemeny_decomposed(rankings, max_exact=1)
            _, optimum = kemeny_optimal(rankings, decompose=False)
            if optimum == 0:
                continue
            assert forced.objective <= 1.5 * optimum + 1e-9

    def test_max_exact_validated(self):
        with pytest.raises(AggregationError):
            kemeny_decomposed([PartialRanking.from_sequence("ab")], max_exact=0)


class TestObservability:
    @pytest.fixture(autouse=True)
    def _isolated_obs(self):
        """Detach ambient obs sessions and reset counters around every test."""
        saved = spans._SESSIONS[:]
        spans._SESSIONS.clear()
        spans._LOCAL.stack.clear()
        metrics.reset()
        yield
        spans._SESSIONS[:] = saved
        spans._LOCAL.stack.clear()
        metrics.reset()

    def test_scc_counters_recorded(self):
        # rotations force one 6-item SCC, so the DP must actually run
        rankings = _rotation_profile(6)
        with obs.capture():
            result = kemeny_decomposed(rankings)
        counters = obs.snapshot()["counters"]
        assert counters["kemeny.scc.components"] == len(result.components) == 1
        assert counters["kemeny.scc.largest"] == result.largest_component == 6
        assert counters["kemeny.dp_states"] == result.dp_states == 1 << 6

    def test_dp_states_counter_absent_when_all_singletons(self):
        sigma = PartialRanking.from_sequence(range(6))
        with obs.capture():
            kemeny_decomposed([sigma, sigma])
        counters = obs.snapshot()["counters"]
        assert "kemeny.dp_states" not in counters
        assert counters["kemeny.scc.components"] == 6


class TestResultShape:
    def test_fields_and_immutability(self):
        rng = resolve_rng(8)
        rankings = [random_bucket_order(6, rng) for _ in range(3)]
        result = kemeny_decomposed(rankings)
        assert isinstance(result, DecomposedResult)
        assert result.ranking.is_full
        assert isinstance(result.components, tuple)
        assert result.lower_bound <= result.objective + 1e-9
        with pytest.raises(AttributeError):
            result.exact = False  # type: ignore[misc]
