"""Tests for similarity search via rank aggregation ([11])."""

from __future__ import annotations

import pytest

from repro.aggregate.median import median_scores
from repro.db.relation import Relation, SchemaError
from repro.db.similarity import similarity_rankings, similarity_search
from repro.db.sources import restaurant_catalog

ROWS = [
    {"id": "q", "cuisine": "thai", "price": 2, "distance": 1.0},
    {"id": "twin", "cuisine": "thai", "price": 2, "distance": 1.2},
    {"id": "close", "cuisine": "thai", "price": 3, "distance": 2.0},
    {"id": "far", "cuisine": "french", "price": 4, "distance": 30.0},
    {"id": "mixed", "cuisine": "french", "price": 2, "distance": 1.0},
]


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows("restaurants", "id", ROWS)


class TestSimilarityRankings:
    def test_one_ranking_per_attribute(self, relation):
        rankings = similarity_rankings(relation, "q")
        assert len(rankings) == 3  # cuisine, price, distance
        assert all(r.domain == relation.keys for r in rankings)

    def test_query_record_tops_every_ranking(self, relation):
        for ranking in similarity_rankings(relation, "q"):
            assert ranking.bucket_index("q") == 0

    def test_categorical_attribute_gives_two_buckets(self, relation):
        (ranking,) = similarity_rankings(relation, "q", attributes=["cuisine"])
        assert len(ranking.buckets) == 2
        assert ranking.tied("q", "twin")
        assert ranking.ahead("q", "far")

    def test_numeric_attribute_orders_by_distance(self, relation):
        (ranking,) = similarity_rankings(relation, "q", attributes=["price"])
        assert ranking.ahead("twin", "close")
        assert ranking.ahead("close", "far")

    def test_unknown_query_key_raises(self, relation):
        with pytest.raises(KeyError):
            similarity_rankings(relation, "nope")

    def test_unknown_attribute_raises(self, relation):
        with pytest.raises(SchemaError):
            similarity_rankings(relation, "q", attributes=["nope"])

    def test_empty_attribute_list_raises(self, relation):
        with pytest.raises(SchemaError):
            similarity_rankings(relation, "q", attributes=[])


class TestSimilaritySearch:
    def test_nearest_neighbors_are_the_two_near_matches(self, relation):
        # 'twin' matches cuisine+price with a tiny distance gap; 'mixed'
        # matches price+distance exactly with a cuisine mismatch — under
        # median rank these legitimately tie as the two nearest neighbours
        result = similarity_search(relation, "q", k=2)
        assert set(result.neighbors) == {"twin", "mixed"}
        assert "q" not in result.neighbors

    def test_far_record_is_last_choice(self, relation):
        result = similarity_search(relation, "q", k=4)
        assert result.neighbors[-1] == "far"

    def test_access_log_is_populated(self, relation):
        result = similarity_search(relation, "q", k=1)
        assert result.access_log.num_lists == 3
        assert result.access_log.depth >= 1

    def test_k_validation(self, relation):
        with pytest.raises(SchemaError):
            similarity_search(relation, "q", k=0)
        with pytest.raises(SchemaError):
            similarity_search(relation, "q", k=len(relation))

    def test_neighbors_have_small_median_closeness_rank(self, relation):
        result = similarity_search(relation, "q", k=2)
        scores = median_scores(list(result.input_rankings))
        worst_neighbor = max(scores[item] for item in result.neighbors)
        non_neighbors = (
            relation.keys - set(result.neighbors) - {"q"}
        )
        # neighbours returned by the sequential algorithm are no worse in
        # median closeness than the records it skipped, up to bucket slack
        assert all(
            scores[other] >= worst_neighbor - max(r.type and max(r.type) for r in result.input_rankings)
            for other in non_neighbors
        )

    def test_on_synthetic_catalog(self):
        relation = restaurant_catalog(60, seed=2)
        query = "r0000"
        result = similarity_search(relation, query, k=5)
        assert len(result.neighbors) == 5
        assert query not in result.neighbors
        # heavy ties in the closeness rankings (categorical + few-valued)
        assert max(max(r.type) for r in result.input_rankings) > 5
