"""Unit and property tests for the refinement algebra (the * operator)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.partial_ranking import PartialRanking
from repro.core.refine import (
    common_full_ranking,
    count_full_refinements,
    full_refinements,
    is_refinement,
    star,
    star_chain,
)
from tests.conftest import bucket_order_pairs, bucket_order_triples, bucket_orders


class TestStar:
    def test_star_breaks_ties_by_tau(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        tau = PartialRanking.from_sequence("bac")
        result = star(tau, sigma)
        assert result.items_in_order() == ["b", "a", "c"]

    def test_star_with_full_tau_gives_full_ranking(self):
        sigma = PartialRanking([["a", "b", "c"]])
        tau = PartialRanking.from_sequence("cab")
        assert star(tau, sigma).is_full

    def test_items_tied_in_both_stay_tied(self):
        sigma = PartialRanking([["a", "b", "c"]])
        tau = PartialRanking([["a", "b"], ["c"]])
        result = star(tau, sigma)
        assert result.tied("a", "b")
        assert result.ahead("a", "c")

    @given(bucket_order_pairs())
    def test_star_result_refines_sigma(self, pair):
        tau, sigma = pair
        assert star(tau, sigma).is_refinement_of(sigma)

    @given(bucket_order_pairs())
    def test_star_respects_tau_on_sigma_ties(self, pair):
        tau, sigma = pair
        result = star(tau, sigma)
        for x in sigma.domain:
            for y in sigma.domain:
                if x != y and sigma.tied(x, y) and tau.ahead(x, y):
                    assert result.ahead(x, y)

    @given(bucket_order_triples())
    def test_star_is_associative(self, triple):
        rho, tau, sigma = triple
        assert star(rho, star(tau, sigma)) == star(star(rho, tau), sigma)


class TestStarChain:
    def test_chain_matches_nested_star(self):
        sigma = PartialRanking([["a", "b", "c"]])
        tau = PartialRanking([["c"], ["a", "b"]])
        rho = PartialRanking.from_sequence("bca")
        assert star_chain(rho, tau, sigma) == star(rho, star(tau, sigma))

    def test_single_element_chain(self):
        sigma = PartialRanking([["a", "b"]])
        assert star_chain(sigma) == sigma

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            star_chain()


class TestIsRefinement:
    def test_wrapper_agrees_with_method(self):
        partial = PartialRanking([["a", "b"]])
        full = PartialRanking.from_sequence("ab")
        assert is_refinement(full, partial)
        assert not is_refinement(partial, full)


class TestFullRefinements:
    def test_counts_are_products_of_factorials(self):
        sigma = PartialRanking([["a", "b"], ["c", "d", "e"]])
        assert count_full_refinements(sigma) == 2 * 6
        assert sum(1 for _ in full_refinements(sigma)) == 12

    def test_full_ranking_has_one_refinement(self):
        sigma = PartialRanking.from_sequence("abc")
        assert list(full_refinements(sigma)) == [sigma]

    def test_all_refinements_are_full_and_refine(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        refinements = list(full_refinements(sigma))
        assert len(refinements) == len(set(refinements))
        for gamma in refinements:
            assert gamma.is_full
            assert gamma.is_refinement_of(sigma)

    @given(bucket_orders(max_size=5))
    def test_enumeration_matches_count(self, sigma):
        assert sum(1 for _ in full_refinements(sigma)) == count_full_refinements(sigma)


class TestCommonFullRanking:
    def test_is_full_over_same_domain(self):
        sigma = PartialRanking([["b", "a"], ["c"]])
        rho = common_full_ranking(sigma)
        assert rho.is_full
        assert rho.domain == sigma.domain

    def test_is_deterministic(self):
        sigma = PartialRanking([["b", "a", "c"]])
        assert common_full_ranking(sigma) == common_full_ranking(sigma.reverse())
