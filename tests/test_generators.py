"""Tests for synthetic ranking generators and workloads."""

from __future__ import annotations

import random

import pytest

from repro.core.partial_ranking import PartialRanking
from repro.errors import InvalidRankingError
from repro.generators.mallows import bucketized_mallows, mallows_full_ranking
from repro.generators.random import (
    random_bucket_order,
    random_full_ranking,
    random_top_k,
    random_type,
    resolve_rng,
)
from repro.generators.workloads import (
    db_profile_workload,
    mallows_profile_workload,
    random_profile_workload,
)
from repro.metrics.kendall import kendall_full


class TestResolveRng:
    def test_passes_through_random(self):
        rng = random.Random(1)
        assert resolve_rng(rng) is rng

    def test_seed_is_deterministic(self):
        assert resolve_rng(5).random() == resolve_rng(5).random()


class TestRandomGenerators:
    def test_full_ranking_is_full(self):
        assert random_full_ranking(10, 0).is_full

    def test_int_domain_uses_range(self):
        assert random_full_ranking(4, 0).domain == {0, 1, 2, 3}

    def test_explicit_domain(self):
        assert random_full_ranking(["x", "y"], 0).domain == {"x", "y"}

    def test_empty_domain_rejected(self):
        with pytest.raises(InvalidRankingError):
            random_full_ranking(0, 0)
        with pytest.raises(InvalidRankingError):
            random_full_ranking([], 0)

    def test_tie_bias_extremes(self):
        assert random_bucket_order(8, 0, tie_bias=0.0).is_full
        assert random_bucket_order(8, 0, tie_bias=1.0).type == (8,)

    def test_tie_bias_validated(self):
        with pytest.raises(InvalidRankingError):
            random_bucket_order(4, 0, tie_bias=1.5)

    def test_determinism(self):
        assert random_bucket_order(10, 42) == random_bucket_order(10, 42)

    def test_random_type_is_composition(self):
        sizes = random_type(12, 0, max_bucket=4)
        assert sum(sizes) == 12
        assert all(1 <= s <= 4 for s in sizes)

    def test_random_type_validation(self):
        with pytest.raises(InvalidRankingError):
            random_type(0)
        with pytest.raises(InvalidRankingError):
            random_type(5, max_bucket=0)

    def test_random_top_k_shape(self):
        sigma = random_top_k(10, 3, 0)
        assert sigma.is_top_k(3)

    def test_random_top_k_validation(self):
        with pytest.raises(InvalidRankingError):
            random_top_k(5, 6, 0)


class TestMallows:
    def test_phi_validation(self):
        with pytest.raises(InvalidRankingError):
            mallows_full_ranking("abc", 0.0)
        with pytest.raises(InvalidRankingError):
            mallows_full_ranking("abc", 1.5)

    def test_partial_reference_rejected(self):
        with pytest.raises(InvalidRankingError):
            mallows_full_ranking(PartialRanking([["a", "b"]]), 0.5)

    def test_empty_reference_rejected(self):
        with pytest.raises(InvalidRankingError):
            mallows_full_ranking([], 0.5)

    def test_low_phi_concentrates_on_reference(self):
        reference = PartialRanking.from_sequence(range(12))
        rng = random.Random(0)
        distances = [
            kendall_full(reference, mallows_full_ranking(reference, 0.05, rng))
            for _ in range(30)
        ]
        assert sum(distances) / len(distances) < 2.0

    def test_high_phi_is_dispersed(self):
        reference = PartialRanking.from_sequence(range(12))
        rng = random.Random(0)
        near = sum(
            kendall_full(reference, mallows_full_ranking(reference, 0.1, rng))
            for _ in range(30)
        )
        far = sum(
            kendall_full(reference, mallows_full_ranking(reference, 1.0, rng))
            for _ in range(30)
        )
        assert near < far

    def test_bucketized_output_is_valid(self):
        sigma = bucketized_mallows(list(range(15)), 0.4, 7, max_bucket=4)
        assert sigma.domain == set(range(15))
        assert all(size <= 4 for size in sigma.type)


class TestWorkloads:
    def test_random_workload_shape(self):
        workload = random_profile_workload(10, 4, seed=0)
        assert workload.num_inputs == 4
        assert workload.domain_size == 10
        assert workload.max_bucket >= 1
        assert "random" in workload.name

    def test_mallows_workload_is_deterministic(self):
        a = mallows_profile_workload(10, 3, seed=5)
        b = mallows_profile_workload(10, 3, seed=5)
        assert a.rankings == b.rankings

    def test_db_workload_catalogs(self):
        for catalog in ("restaurants", "flights"):
            workload = db_profile_workload(30, seed=0, catalog=catalog)
            assert workload.domain_size == 30
            assert workload.max_bucket > 1  # the whole point: ties

    def test_db_workload_unknown_catalog(self):
        with pytest.raises(InvalidRankingError):
            db_profile_workload(10, catalog="nope")

    def test_nonpositive_m_rejected(self):
        with pytest.raises(InvalidRankingError):
            random_profile_workload(5, 0)
        with pytest.raises(InvalidRankingError):
            mallows_profile_workload(5, 0)
