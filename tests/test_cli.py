"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.partial_ranking import PartialRanking
from repro.io import dump_profile_csv, dump_profile_json, dump_ranking_json


@pytest.fixture
def profile_json(tmp_path):
    path = tmp_path / "profile.json"
    dump_profile_json(
        {
            "price": PartialRanking([["a", "b"], ["c"], ["d"]]),
            "stars": PartialRanking([["d"], ["a", "c"], ["b"]]),
            "dist": PartialRanking([["c"], ["a", "b", "d"]]),
        },
        path,
    )
    return str(path)


@pytest.fixture
def profile_csv(tmp_path, profile_json):
    from repro.io import load_profile_json

    path = tmp_path / "profile.csv"
    dump_profile_csv(load_profile_json(profile_json), path)
    return str(path)


class TestCompare:
    def test_pairwise_output(self, profile_json, capsys):
        assert main(["compare", profile_json, "--pairwise"]) == 0
        out = capsys.readouterr().out
        assert "k_prof" in out and "price vs" in out

    def test_single_metric(self, profile_json, capsys):
        assert main(["compare", profile_json, "--metric", "f_prof"]) == 0
        out = capsys.readouterr().out
        assert "f_prof" in out and "k_haus" not in out

    def test_two_single_ranking_files(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        dump_ranking_json(PartialRanking([["x", "y"]]), a)
        dump_ranking_json(PartialRanking([["x"], ["y"]]), b)
        assert main(["compare", str(a), str(b)]) == 0
        assert "vs" in capsys.readouterr().out

    def test_single_ranking_is_an_error(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        dump_ranking_json(PartialRanking([["x"]]), a)
        assert main(["compare", str(a)]) == 2
        assert "at least two" in capsys.readouterr().err


class TestAggregate:
    @pytest.mark.parametrize(
        "algorithm", ["median", "borda", "mc4", "best-input", "matching"]
    )
    def test_all_algorithms_run(self, profile_json, capsys, algorithm):
        assert main(["aggregate", profile_json, "--algorithm", algorithm]) == 0
        out = capsys.readouterr().out
        assert "total f_prof" in out

    def test_topk_output(self, profile_csv, capsys):
        assert main(["aggregate", profile_csv, "--output", "topk", "--k", "2"]) == 0
        assert "aggregated 3 rankings" in capsys.readouterr().out

    def test_json_output_parses(self, profile_json, capsys):
        assert main(["aggregate", profile_json, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "buckets" in payload

    def test_missing_file_is_reported(self, capsys):
        assert main(["aggregate", "/nonexistent/profile.json"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_partial_output(self, profile_json, capsys):
        assert main(["aggregate", profile_json, "--output", "partial"]) == 0
        assert "PartialRanking" in capsys.readouterr().out


class TestExperimentsSubcommand:
    def test_lists_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "e01" in out and "e12" in out
