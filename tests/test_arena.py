"""ProfileArena: storage modes, attach/detach lifecycle, and parity.

Three families of guarantees, all exact:

* **storage** — int32 is selected iff the fit guard says doubled
  positions fit, and the decoded position matrix is bit-identical to
  :func:`repro.metrics.batch.position_matrix` either way;
* **lifecycle** — attaches are memoized per process, refcounts balance,
  and the *last* detach unlinks the segment even when worker processes
  attached it in between (the hypothesis interleaving test); a leaked
  segment would make the final re-attach succeed instead of raising;
* **parity** — every ``jobs`` level and every strategy computes the same
  bits from the arena as the object layer computes from the profile.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import _bucket_order_of
from repro.core import DomainCodec, PartialRanking
from repro.core.arena import ArenaHandle, ProfileArena, int32_fits, storage_dtype
from repro.errors import DomainMismatchError, InvalidRankingError
from repro.aggregate.batch import median_scores_batch
from repro.generators.workloads import mallows_profile_workload
from repro.metrics import pairwise_distance_matrix
from repro.metrics.batch import pair_counts_matrix, position_matrix
from repro.parallel import parallel_map_arena

METRICS = ("kendall", "footrule", "kendall_hausdorff", "footrule_hausdorff")


def profiles(
    min_m: int = 1,
    max_m: int = 4,
    min_n: int = 1,
    max_n: int = 6,
) -> st.SearchStrategy[tuple[PartialRanking, ...]]:
    """Profiles of bucket orders over one integer domain."""

    @st.composite
    def draw_profile(draw) -> tuple[PartialRanking, ...]:
        n = draw(st.integers(min_value=min_n, max_value=max_n))
        m = draw(st.integers(min_value=min_m, max_value=max_m))
        return tuple(draw(_bucket_order_of(n)) for _ in range(m))

    return draw_profile()


def _row_half_total(arena: ProfileArena, row: int) -> int:
    """Worker: exact int64 total of one row's doubled half-positions."""
    return int(arena.half_position_rows[row].astype(np.int64).sum())


class TestStorageMode:
    def test_fit_guard(self) -> None:
        assert int32_fits(5)
        assert int32_fits((2**31 - 1) // 2)
        assert not int32_fits(2**31)
        assert storage_dtype(5) is np.int32
        assert storage_dtype(2**31) is np.int64

    @given(profiles())
    def test_positions_bit_identical_to_object_layer(self, profile) -> None:
        with ProfileArena.from_profile(profile) as arena:
            assert arena.storage == "int32"
            expected = position_matrix(profile)
            assert arena.positions.dtype == np.float64
            assert np.array_equal(arena.positions, expected)

    def test_empty_profile_rejected(self) -> None:
        with pytest.raises((InvalidRankingError, DomainMismatchError)):
            ProfileArena.from_profile(())

    def test_handle_roundtrips_through_pickle(self) -> None:
        import pickle

        profile = (PartialRanking([[0, 1], [2]]),)
        with ProfileArena.from_profile(profile) as arena:
            handle = arena.handle()
            clone = pickle.loads(pickle.dumps(handle))
            assert clone == handle
            assert clone.nbytes == arena.nbytes
            attached = clone.attach()
            assert attached is arena  # same process: memoized
            attached.detach()


class TestLifecycle:
    def test_for_profile_interns_by_identity(self) -> None:
        profile = (PartialRanking([[0], [1, 2]]), PartialRanking([[2, 1], [0]]))
        first = ProfileArena.for_profile(profile)
        second = ProfileArena.for_profile(profile)
        try:
            assert first is second
        finally:
            second.detach()
            first.detach()
        assert not first.attached

    def test_use_after_detach_raises(self) -> None:
        arena = ProfileArena.from_profile((PartialRanking([[0, 1]]),))
        arena.detach()
        with pytest.raises(InvalidRankingError):
            _ = arena.positions

    @settings(max_examples=8, deadline=None)
    @given(profiles(min_m=2, max_m=4, min_n=2, max_n=6), st.data())
    def test_interleaved_attach_detach_never_leaks(self, profile, data) -> None:
        """Random interleavings of re-attach, detach, and *real* pooled
        work (worker processes mapping the segment) always end with the
        segment unlinked on the last parent detach — re-attaching by name
        must fail because the file is gone."""
        arena = ProfileArena.from_profile(profile)
        handle = arena.handle()
        live = [arena]
        ops = data.draw(
            st.lists(st.sampled_from(["attach", "detach", "pool"]), max_size=5)
        )
        rows = list(range(len(profile)))
        serial = [_row_half_total(arena, row) for row in rows]
        for op in ops:
            if op == "attach":
                live.append(ProfileArena.attach(handle))
            elif op == "detach" and len(live) > 1:
                live.pop().detach()
            elif op == "pool":
                pooled = parallel_map_arena(_row_half_total, rows, arena, jobs=2)
                assert pooled == serial
        while live:
            live.pop().detach()
        assert not arena.attached
        with pytest.raises(FileNotFoundError):
            ProfileArena.attach(handle)

    def test_unknown_segment_raises_file_not_found(self) -> None:
        bogus = ArenaHandle(name="repro-arena-does-not-exist", m=1, n=1, storage="int64")
        with pytest.raises(FileNotFoundError):
            ProfileArena.attach(bogus)


class TestJobsParity:
    @pytest.fixture(scope="class")
    def profile(self) -> tuple[PartialRanking, ...]:
        return tuple(mallows_profile_workload(10, 6, seed=13).rankings)

    @pytest.mark.parametrize("metric", METRICS)
    def test_jobs_levels_bit_identical(self, profile, metric: str) -> None:
        expected = pairwise_distance_matrix(profile, metric)
        with ProfileArena.from_profile(profile) as arena:
            matrices = [
                pairwise_distance_matrix(arena, metric, jobs=jobs)
                for jobs in (1, 2, 4)
            ]
        for matrix in matrices:
            assert np.array_equal(matrix, expected)

    @pytest.mark.parametrize("strategy", ["dense", "tiled", "pairs"])
    def test_pair_counts_strategies_match_object_layer(
        self, profile, strategy: str
    ) -> None:
        expected = pair_counts_matrix(profile, strategy="dense")
        with ProfileArena.from_profile(profile) as arena:
            actual = pair_counts_matrix(arena, strategy=strategy)
        for i in range(len(profile)):
            for j in range(len(profile)):
                assert actual.pair_counts(i, j) == expected.pair_counts(i, j)

    def test_aggregation_scores_match_object_layer(self, profile) -> None:
        expected = median_scores_batch(profile)
        with ProfileArena.from_profile(profile) as arena:
            assert median_scores_batch(arena) == expected
