"""Tests for the top-level public API surface."""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.aggregate.median
import repro.core.partial_ranking


class TestExports:
    def test_every_all_entry_is_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    def test_version_matches_pyproject(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackage_alls_are_importable(self):
        import repro.aggregate as aggregate
        import repro.core as core
        import repro.db as db
        import repro.generators as generators
        import repro.metrics as metrics

        for module in (core, metrics, aggregate, db, generators):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"


class TestDoctests:
    @pytest.mark.parametrize(
        "module",
        [repro, repro.core.partial_ranking, repro.aggregate.median],
        ids=lambda m: m.__name__,
    )
    def test_doctests_pass(self, module):
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
        assert results.attempted > 0


class TestQuickstartFlow:
    def test_readme_flow(self):
        """The README quickstart, as an executable test."""
        from repro import MedianAggregator, PartialRanking, kendall, footrule

        by_price = PartialRanking([["thai-palace", "roma"], ["le-bistro"]])
        by_stars = PartialRanking([["le-bistro"], ["thai-palace"], ["roma"]])
        assert kendall(by_price, by_stars) == 2.5
        assert footrule(by_price, by_stars) > 0
        agg = MedianAggregator((by_price, by_stars))
        assert agg.full_ranking().items_in_order()[0] == "thai-palace"
