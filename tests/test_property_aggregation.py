"""Property-based tests for the aggregation theorems (§6, appendix A.6)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregate.dp import optimal_partial_ranking
from repro.aggregate.exact import (
    all_partial_rankings,
    optimal_full_ranking,
    optimal_partial_ranking_bruteforce,
    optimal_top_k,
)
from repro.aggregate.median import (
    median_full_ranking,
    median_partial_ranking,
    median_scores,
    median_top_k,
)
from repro.aggregate.objective import total_distance, total_l1_to_function
from repro.core.partial_ranking import PartialRanking
from repro.generators.random import random_bucket_order, random_full_ranking, resolve_rng

profiles = st.integers(min_value=0, max_value=100_000)


def _random_profile(seed: int, n: int, m: int, tie_bias: float = 0.5):
    rng = resolve_rng(seed)
    return [random_bucket_order(n, rng, tie_bias=tie_bias) for _ in range(m)]


class TestLemma8Property:
    @settings(max_examples=25, deadline=None)
    @given(profiles)
    def test_median_beats_every_input_as_a_function(self, seed):
        rankings = _random_profile(seed, 7, 5)
        f = median_scores(rankings)
        cost = total_l1_to_function(f, rankings)
        for sigma in rankings:
            assert cost <= total_l1_to_function(sigma.positions, rankings) + 1e-9


class TestTheorem10Property:
    @settings(max_examples=15, deadline=None)
    @given(profiles)
    def test_f_dagger_factor_two_over_bucket_orders(self, seed):
        rankings = _random_profile(seed, 5, 3)
        f_dagger = median_partial_ranking(rankings)
        cost = total_distance(f_dagger, rankings, "f_prof")
        _, optimum = optimal_partial_ranking_bruteforce(rankings, metric="f_prof")
        assert cost <= 2 * optimum + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(profiles)
    def test_f_dagger_is_l1_closest_to_median(self, seed):
        rankings = _random_profile(seed, 5, 4)
        f = median_scores(rankings)
        f_dagger = optimal_partial_ranking(f)
        best = sum(abs(f_dagger[x] - f[x]) for x in f)
        for buckets_candidate in all_partial_rankings(sorted(f, key=repr)):
            cost = sum(abs(buckets_candidate[x] - f[x]) for x in f)
            assert best <= cost + 1e-9


class TestTheorem9Property:
    @settings(max_examples=15, deadline=None)
    @given(profiles, st.integers(min_value=1, max_value=3))
    def test_median_topk_factor_three(self, seed, k):
        rankings = _random_profile(seed, 5, 4)
        top = median_top_k(rankings, k)
        cost = total_distance(top, rankings, "f_prof")
        _, optimum = optimal_top_k(rankings, k, metric="f_prof")
        assert cost <= 3 * optimum + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(profiles)
    def test_constant_factor_transfers_to_other_metrics(self, seed):
        """Theorem 7's equivalence: a 3-approx for F_prof is a constant-factor
        approx for K_prof / K_Haus / F_Haus. Chaining the proved inequalities
        gives d <= 4*F_prof and F_prof <= 2*d for every metric d, hence a
        worst-case transfer constant of 3 * 4 * 2 = 24."""
        rankings = _random_profile(seed, 5, 3)
        k = 2
        top = median_top_k(rankings, k)
        for metric in ("k_prof", "k_haus", "f_haus"):
            cost = total_distance(top, rankings, metric)
            _, optimum = optimal_top_k(rankings, k, metric=metric)
            assert cost <= 24 * optimum + 1e-9


class TestTheorem11Property:
    @settings(max_examples=15, deadline=None)
    @given(profiles)
    def test_full_input_full_output_factor_two(self, seed):
        rng = resolve_rng(seed)
        rankings = [random_full_ranking(5, rng) for _ in range(4)]
        aggregate = median_full_ranking(rankings)
        cost = total_distance(aggregate, rankings, "f_prof")
        _, optimum = optimal_full_ranking(rankings, metric="f_prof")
        assert cost <= 2 * optimum + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(profiles)
    def test_full_output_refines_median_induced_ranking(self, seed):
        rng = resolve_rng(seed)
        rankings = [random_full_ranking(6, rng) for _ in range(5)]
        f = median_scores(rankings)
        induced = PartialRanking.from_scores(f)
        assert median_full_ranking(rankings).is_refinement_of(induced)


class TestCrossMetricConsistency:
    @settings(max_examples=10, deadline=None)
    @given(profiles)
    def test_partial_optimum_never_worse_than_full_optimum(self, seed):
        rankings = _random_profile(seed, 4, 3)
        _, full_cost = optimal_full_ranking(rankings, metric="f_prof")
        _, partial_cost = optimal_partial_ranking_bruteforce(rankings, metric="f_prof")
        assert partial_cost <= full_cost + 1e-9
