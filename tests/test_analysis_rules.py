"""Tests for the repro.analysis static-analysis subsystem.

One positive (violating) and one negative (clean) fixture per RP rule,
plus framework-level tests: noqa suppression, reporters, CLI exit codes,
and the acceptance check that the shipped tree itself is clean.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.engine import (
    Severity,
    analyze_paths,
    analyze_source,
    find_project_root,
    registered_rules,
)
from repro.analysis.reporters import render_json, render_text

REPO_ROOT = find_project_root(Path(__file__).resolve().parent)

ALL_CODES = (
    "RP001",
    "RP002",
    "RP003",
    "RP004",
    "RP005",
    "RP006",
    "RP007",
    "RP008",
    "RP009",
    "RP010",
    "RP011",
    "RP012",
    "RP013",
    "RP014",
    "RP015",
    "RP016",
)


def codes(result) -> list[str]:
    return [finding.rule for finding in result.active]


class TestRegistry:
    def test_all_rules_registered(self):
        assert tuple(sorted(registered_rules())) == ALL_CODES

    def test_rules_have_descriptions_and_severities(self):
        for code, rule in registered_rules().items():
            assert rule.description, code
            assert isinstance(rule.severity, Severity)

    def test_unknown_select_rejected(self):
        with pytest.raises(ValueError, match="RP999"):
            analyze_source("x = 1", select=["RP999"])


class TestRP001FloatEquality:
    def test_positive_exact_comparison_on_distance(self):
        result = analyze_source(
            "from repro.metrics import kendall\n"
            "def check(a, b):\n"
            "    return kendall(a, b) == 2.5\n",
            select=["RP001"],
        )
        assert codes(result) == ["RP001"]
        assert "kendall" in result.active[0].message

    def test_negative_tolerant_comparison_and_plain_equality(self):
        result = analyze_source(
            "import math\n"
            "from repro.metrics import kendall\n"
            "def check(a, b, n):\n"
            "    if n == 0:\n"  # plain int equality stays legal
            "        return True\n"
            "    return math.isclose(kendall(a, b), 2.5)\n",
            select=["RP001"],
        )
        assert codes(result) == []

    def test_integer_exact_distances_excluded(self):
        result = analyze_source(
            "from repro.metrics import kendall_hausdorff_counts\n"
            "def check(a, b):\n"
            "    return kendall_hausdorff_counts(a, b) == 3\n",
            select=["RP001"],
        )
        assert codes(result) == []


class TestRP002DomainValidation:
    _HEADER = (
        "from repro.core.partial_ranking import PartialRanking\n"
        "__all__ = ['my_distance']\n"
    )

    def test_positive_entry_point_without_validation(self):
        result = analyze_source(
            self._HEADER
            + "def my_distance(sigma: PartialRanking, tau: PartialRanking) -> float:\n"
            "    return 1.0\n",
            filename="src/repro/metrics/mymetric.py",
            select=["RP002"],
        )
        assert codes(result) == ["RP002"]
        assert "my_distance" in result.active[0].message

    def test_negative_direct_validation(self):
        result = analyze_source(
            self._HEADER
            + "def my_distance(sigma: PartialRanking, tau: PartialRanking) -> float:\n"
            "    if sigma.domain != tau.domain:\n"
            "        raise ValueError('mismatch')\n"
            "    return 1.0\n",
            filename="src/repro/metrics/mymetric.py",
            select=["RP002"],
        )
        assert codes(result) == []

    def test_negative_validation_via_call_graph(self):
        result = analyze_source(
            self._HEADER
            + "def _require_common_domain(sigma, tau):\n"
            "    pass\n"
            "def _inner(sigma, tau):\n"
            "    _require_common_domain(sigma, tau)\n"
            "    return 1.0\n"
            "def my_distance(sigma: PartialRanking, tau: PartialRanking) -> float:\n"
            "    return _inner(sigma, tau)\n",
            filename="src/repro/metrics/mymetric.py",
            select=["RP002"],
        )
        assert codes(result) == []

    def test_negative_contract_decorator_counts(self):
        result = analyze_source(
            "from repro.analysis.contracts import checked_metric\n"
            + self._HEADER
            + "@checked_metric()\n"
            "def my_distance(sigma: PartialRanking, tau: PartialRanking) -> float:\n"
            "    return 1.0\n",
            filename="src/repro/metrics/mymetric.py",
            select=["RP002"],
        )
        assert codes(result) == []

    def test_private_and_non_metric_functions_ignored(self):
        result = analyze_source(
            self._HEADER
            + "def _helper(sigma: PartialRanking, tau: PartialRanking) -> float:\n"
            "    return 1.0\n"
            "def my_distance(sigma: PartialRanking, tau: PartialRanking) -> bool:\n"
            "    return True\n",  # predicate: bool return is exempt
            filename="src/repro/metrics/mymetric.py",
            select=["RP002"],
        )
        assert codes(result) == []

    def test_aggregator_profile_parameter(self):
        body = (
            "from collections.abc import Sequence\n"
            "from repro.core.partial_ranking import PartialRanking\n"
            "__all__ = ['aggregate']\n"
            "def aggregate(rankings: Sequence[PartialRanking]) -> float:\n"
            "    return 0.0\n"
        )
        flagged = analyze_source(
            body, filename="src/repro/aggregate/myagg.py", select=["RP002"]
        )
        assert codes(flagged) == ["RP002"]


class TestRP003DunderAll:
    def test_positive_phantom_and_duplicate_entries(self):
        result = analyze_source(
            "__all__ = ['real', 'phantom', 'real']\n"
            "def real():\n"
            "    pass\n",
            select=["RP003"],
        )
        messages = sorted(f.message for f in result.active)
        assert len(messages) == 2
        assert any("phantom" in m for m in messages)
        assert any("twice" in m for m in messages)

    def test_public_def_missing_is_warning(self):
        result = analyze_source(
            "__all__ = ['listed']\n"
            "def listed():\n"
            "    pass\n"
            "def unlisted():\n"
            "    pass\n",
            select=["RP003"],
        )
        assert [f.severity for f in result.active] == [Severity.WARNING]

    def test_negative_consistent_module(self):
        result = analyze_source(
            "from os.path import join\n"
            "__all__ = ['api', 'join', 'CONST']\n"
            "CONST = 3\n"
            "def api():\n"
            "    pass\n"
            "def _private():\n"
            "    pass\n",
            select=["RP003"],
        )
        assert codes(result) == []

    def test_negative_pep562_lazy_module(self):
        result = analyze_source(
            "__all__ = ['lazy_name']\n"
            "def __getattr__(name):\n"
            "    raise AttributeError(name)\n",
            select=["RP003"],
        )
        assert codes(result) == []


class TestRP004OracleImports:
    def test_positive_oracle_in_serving_code(self):
        result = analyze_source(
            "from repro.metrics.kendall import kendall_naive\n",
            filename="src/repro/db/query.py",
            select=["RP004"],
        )
        assert codes(result) == ["RP004"]

    def test_negative_allowed_locations(self):
        snippet = "from repro.metrics.kendall import kendall_naive\n"
        for filename in (
            "tests/test_something.py",
            "benchmarks/bench_metrics.py",
            "src/repro/experiments/e99_new.py",
        ):
            result = analyze_source(snippet, filename=filename, select=["RP004"])
            assert codes(result) == [], filename

    def test_negative_fast_import(self):
        result = analyze_source(
            "from repro.metrics.kendall import kendall\n",
            filename="src/repro/db/query.py",
            select=["RP004"],
        )
        assert codes(result) == []


class TestRP005MutableDefaults:
    def test_positive_list_literal_and_constructor(self):
        result = analyze_source(
            "def f(x, acc=[]):\n"
            "    return acc\n"
            "def g(x, *, table=dict()):\n"
            "    return table\n",
            select=["RP005"],
        )
        assert codes(result) == ["RP005", "RP005"]

    def test_negative_none_sentinel(self):
        result = analyze_source(
            "def f(x, acc=None, scale=1.0, name='x', items=()):\n"
            "    acc = [] if acc is None else acc\n"
            "    return acc\n",
            select=["RP005"],
        )
        assert codes(result) == []


class TestRP006TheoremCitations:
    def _project(self, tmp_path: Path) -> Path:
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "THEORY.md").write_text(
            "# THEORY\n\n"
            "## Statement index\n\n"
            "* **Theorem 5** — witnesses.\n"
            "* **Proposition 13** — penalty regimes.\n"
            "* **Lemma 26** / **Lemma 27** — matchings.\n\n"
            "## Other\n\n"
            "Theorem 99 is mentioned here but is NOT in the index.\n",
            encoding="utf-8",
        )
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        return tmp_path

    def test_positive_unknown_statement(self, tmp_path):
        root = self._project(tmp_path)
        result = analyze_source(
            'def f():\n    """Implements Theorem 42."""\n',
            root=root,
            select=["RP006"],
        )
        assert codes(result) == ["RP006"]
        assert "Theorem 42" in result.active[0].message

    def test_index_section_is_authoritative(self, tmp_path):
        root = self._project(tmp_path)
        result = analyze_source(
            'def f():\n    """Uses Theorem 99."""\n',  # outside the index section
            root=root,
            select=["RP006"],
        )
        assert codes(result) == ["RP006"]

    def test_negative_known_statements_and_compact_form(self, tmp_path):
        root = self._project(tmp_path)
        result = analyze_source(
            '"""Module on Proposition 13."""\n'
            "def f():\n"
            '    """Lemma 26/27 and Theorem 5 apply."""\n',
            root=root,
            select=["RP006"],
        )
        assert codes(result) == []

    def test_skipped_without_theory_doc(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        result = analyze_source(
            'def f():\n    """Implements Theorem 42."""\n',
            root=tmp_path,
            select=["RP006"],
        )
        assert codes(result) == []


class TestRP007OverbroadExcept:
    def test_positive_bare_and_broad(self):
        result = analyze_source(
            "try:\n"
            "    x = 1\n"
            "except:\n"
            "    pass\n"
            "try:\n"
            "    y = 2\n"
            "except Exception:\n"
            "    y = 0\n",
            select=["RP007"],
        )
        assert codes(result) == ["RP007", "RP007"]

    def test_negative_specific_or_reraising(self):
        result = analyze_source(
            "try:\n"
            "    x = 1\n"
            "except (KeyError, ValueError):\n"
            "    pass\n"
            "try:\n"
            "    y = 2\n"
            "except Exception as exc:\n"
            "    raise RuntimeError('wrapped') from exc\n",
            select=["RP007"],
        )
        assert codes(result) == []


class TestRP008MetricMatrix:
    def _project(self, tmp_path: Path, test_body: str) -> Path:
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "test_axioms.py").write_text(test_body, encoding="utf-8")
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        return tmp_path

    _INIT = (
        "from repro.metrics.kendall import kendall\n"
        "__all__ = ['kendall', 'kendall_brandnew']\n"
        "def kendall_brandnew(a, b):\n"
        "    return kendall(a, b)\n"
    )

    def test_positive_uncovered_metric(self, tmp_path):
        root = self._project(tmp_path, "from repro.metrics import kendall\n")
        result = analyze_source(
            self._INIT,
            filename="src/repro/metrics/__init__.py",
            root=root,
            select=["RP008"],
        )
        assert codes(result) == ["RP008"]
        assert "kendall_brandnew" in result.active[0].message

    def test_negative_covered_metric(self, tmp_path):
        root = self._project(
            tmp_path,
            "from repro.metrics import kendall, kendall_brandnew\n",
        )
        result = analyze_source(
            self._INIT,
            filename="src/repro/metrics/__init__.py",
            root=root,
            select=["RP008"],
        )
        assert codes(result) == []

    def test_only_fires_on_metrics_init(self, tmp_path):
        root = self._project(tmp_path, "")
        result = analyze_source(
            self._INIT,
            filename="src/repro/metrics/kendall2.py",
            root=root,
            select=["RP008"],
        )
        assert codes(result) == []


class TestRP009PairwiseLoops:
    _NESTED = (
        "from repro.metrics import kendall\n"
        "def matrix(profile):\n"
        "    out = []\n"
        "    for sigma in profile:\n"
        "        for tau in profile:\n"
        "            out.append(kendall(sigma, tau))\n"
        "    return out\n"
    )

    def test_positive_nested_statement_loops(self):
        result = analyze_source(self._NESTED, select=["RP009"])
        assert codes(result) == ["RP009"]
        assert "pairwise_distance_matrix" in result.active[0].message
        assert result.active[0].severity is Severity.WARNING

    def test_positive_double_comprehension(self):
        result = analyze_source(
            "from repro.metrics import footrule\n"
            "def matrix(profile):\n"
            "    return [footrule(s, t) for s in profile for t in profile]\n",
            select=["RP009"],
        )
        assert codes(result) == ["RP009"]

    def test_negative_single_loop(self):
        result = analyze_source(
            "from repro.metrics import kendall\n"
            "def against_candidate(candidate, profile):\n"
            "    return [kendall(candidate, sigma) for sigma in profile]\n",
            select=["RP009"],
        )
        assert codes(result) == []

    def test_negative_non_metric_call_in_nested_loop(self):
        result = analyze_source(
            "def grid(n):\n"
            "    return [[max(i, j) for j in range(n)] for i in range(n)]\n",
            select=["RP009"],
        )
        assert codes(result) == []

    def test_negative_tests_and_benchmarks_exempt(self):
        for filename in ("tests/test_x.py", "benchmarks/bench_x.py"):
            result = analyze_source(self._NESTED, filename=filename, select=["RP009"])
            assert codes(result) == [], filename

    def test_noqa_escape(self):
        result = analyze_source(
            "from repro.metrics import kendall\n"
            "def matrix(profile):\n"
            "    return [\n"
            "        kendall(s, t)  # repro: noqa[RP009]\n"
            "        for s in profile for t in profile\n"
            "    ]\n",
            select=["RP009"],
        )
        assert codes(result) == []
        assert sum(finding.suppressed for finding in result.findings) == 1

    def test_positive_per_item_median_of(self):
        result = analyze_source(
            "from repro.aggregate.median import median_of\n"
            "def scores(profile, domain):\n"
            "    out = {}\n"
            "    for ranking in [profile]:\n"
            "        for item in domain:\n"
            "            out[item] = median_of([s[item] for s in ranking])\n"
            "    return out\n",
            select=["RP009"],
        )
        assert codes(result) == ["RP009"]
        assert "repro.aggregate.batch" in result.active[0].message

    def test_positive_cross_level_position_gather(self):
        result = analyze_source(
            "def gather(rankings, domain):\n"
            "    return {\n"
            "        item: [sigma[item] for sigma in rankings]\n"
            "        for item in domain\n"
            "    }\n",
            select=["RP009"],
        )
        assert codes(result) == ["RP009"]
        assert "sigma[item]" in result.active[0].message
        assert "(m, n) position matrix" in result.active[0].message

    def test_negative_non_ranking_container_gather(self):
        # row[name] / line[i]: generic indexing, not the paper's notation
        result = analyze_source(
            "def table(rows, names):\n"
            "    return [[row[name] for name in names] for row in rows]\n",
            select=["RP009"],
        )
        assert codes(result) == []

    def test_negative_same_level_subscript(self):
        # sigma[item] where both names come from the same loop target
        result = analyze_source(
            "def pairs(entries, domain):\n"
            "    return [\n"
            "        [sigma[item] for sigma, item in entries]\n"
            "        for _ in domain\n"
            "    ]\n",
            select=["RP009"],
        )
        assert codes(result) == []

    def test_negative_single_loop_gather(self):
        result = analyze_source(
            "def one_item(rankings, item):\n"
            "    return [sigma[item] for sigma in rankings]\n",
            select=["RP009"],
        )
        assert codes(result) == []

    def test_positive_profile_cost_kernel_in_nested_loop(self):
        result = analyze_source(
            "from repro.aggregate.kemeny import pair_cost_array\n"
            "def sweep(profiles, penalties):\n"
            "    out = []\n"
            "    for profile in profiles:\n"
            "        for p in penalties:\n"
            "            out.append(pair_cost_array(profile, p))\n"
            "    return out\n",
            select=["RP009"],
        )
        assert codes(result) == ["RP009"]
        assert "profile cost kernel" in result.active[0].message
        assert "kemeny_decomposed" in result.active[0].message

    def test_positive_profile_cost_list_wrapper_too(self):
        result = analyze_source(
            "from repro.aggregate.kemeny import pair_cost_matrix\n"
            "def grid(profiles):\n"
            "    return [\n"
            "        pair_cost_matrix(profile)\n"
            "        for group in profiles for profile in group\n"
            "    ]\n",
            select=["RP009"],
        )
        assert codes(result) == ["RP009"]

    def test_negative_profile_cost_kernel_single_loop(self):
        # one matrix per profile in a flat loop is the intended usage
        result = analyze_source(
            "from repro.aggregate.kemeny import pair_cost_array\n"
            "def per_profile(profiles):\n"
            "    return [pair_cost_array(profile) for profile in profiles]\n",
            select=["RP009"],
        )
        assert codes(result) == []

    def test_gather_noqa_escape(self):
        result = analyze_source(
            "def gather(rankings, domain):\n"
            "    return {\n"
            "        item: [sigma[item] for sigma in rankings]  # repro: noqa[RP009]\n"
            "        for item in domain\n"
            "    }\n",
            select=["RP009"],
        )
        assert codes(result) == []
        assert sum(finding.suppressed for finding in result.findings) == 1


class TestRP010OracleCoverage:
    """Cross-file rule: metrics.__all__ vs covers=(...) in verify/oracles.py."""

    _ORACLES = (
        "ENTRIES = (\n"
        "    OracleEntry(name='kendall-p-half', covers=('kendall', 'kendall_large')),\n"
        "    OracleEntry(name='footrule', covers=('footrule',)),\n"
        ")\n"
    )

    def _project(self, tmp_path: Path, exports: str) -> Path:
        metrics = tmp_path / "src" / "repro" / "metrics"
        verify = tmp_path / "src" / "repro" / "verify"
        metrics.mkdir(parents=True)
        verify.mkdir(parents=True)
        (metrics / "__init__.py").write_text(
            f"__all__ = {exports}\n", encoding="utf-8"
        )
        (verify / "oracles.py").write_text(self._ORACLES, encoding="utf-8")
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        return tmp_path

    def test_positive_uncovered_metric(self, tmp_path):
        root = self._project(
            tmp_path, "['kendall', 'footrule', 'kendall_brandnew']"
        )
        result = analyze_paths([root / "src"], root=root, select=["RP010"])
        assert codes(result) == ["RP010"]
        assert "kendall_brandnew" in result.active[0].message
        assert result.active[0].severity is Severity.ERROR

    def test_negative_all_covered(self, tmp_path):
        root = self._project(tmp_path, "['kendall', 'kendall_large', 'footrule']")
        result = analyze_paths([root / "src"], root=root, select=["RP010"])
        assert codes(result) == []

    def test_negative_non_metric_exports_ignored(self, tmp_path):
        root = self._project(tmp_path, "['kendall', 'PairCounts', 'METRICS']")
        result = analyze_paths([root / "src"], root=root, select=["RP010"])
        assert codes(result) == []

    def test_negative_correlation_exports_exempt(self, tmp_path):
        root = self._project(
            tmp_path, "['kendall', 'kendall_tau_a', 'kendall_tau_b']"
        )
        result = analyze_paths([root / "src"], root=root, select=["RP010"])
        assert codes(result) == []

    def test_silent_when_oracles_file_absent(self, tmp_path):
        root = self._project(tmp_path, "['kendall', 'kendall_brandnew']")
        (root / "src" / "repro" / "verify" / "oracles.py").unlink()
        result = analyze_paths([root / "src"], root=root, select=["RP010"])
        assert codes(result) == []

    def test_silent_on_lone_snippet(self):
        result = analyze_source(
            "__all__ = ['kendall_brandnew']\n",
            filename="src/repro/metrics/__init__.py",
            select=["RP010"],
        )
        assert codes(result) == []

    def _add_aggregate_batch(self, root: Path, exports: str) -> None:
        aggregate = root / "src" / "repro" / "aggregate"
        aggregate.mkdir(parents=True)
        (aggregate / "batch.py").write_text(
            f"__all__ = {exports}\n", encoding="utf-8"
        )

    def test_positive_uncovered_aggregation_kernel(self, tmp_path):
        # every aggregate.batch export needs coverage, whatever its name
        root = self._project(tmp_path, "['kendall', 'footrule']")
        self._add_aggregate_batch(root, "['median_scores_batch']")
        result = analyze_paths([root / "src"], root=root, select=["RP010"])
        assert codes(result) == ["RP010"]
        assert "median_scores_batch" in result.active[0].message
        assert "dict path is the natural oracle" in result.active[0].message

    def test_negative_covered_aggregation_kernel(self, tmp_path):
        root = self._project(tmp_path, "['kendall', 'footrule']")
        self._add_aggregate_batch(root, "['median_scores_batch']")
        oracles = root / "src" / "repro" / "verify" / "oracles.py"
        oracles.write_text(
            self._ORACLES.replace(
                "covers=('footrule',)",
                "covers=('footrule', 'median_scores_batch')",
            ),
            encoding="utf-8",
        )
        result = analyze_paths([root / "src"], root=root, select=["RP010"])
        assert codes(result) == []

    def test_silent_when_aggregate_batch_absent(self, tmp_path):
        # the metrics-only project from the fixtures above stays valid
        root = self._project(tmp_path, "['kendall', 'kendall_large', 'footrule']")
        result = analyze_paths([root / "src"], root=root, select=["RP010"])
        assert codes(result) == []

    _PLUGIN_FILE = "src/repro/metrics/plugins/myplugin.py"

    def test_positive_plugin_registration_missing_oracle(self):
        result = analyze_source(
            "register_metric(MetricPlugin(\n"
            "    name='mine', aliases=(), citation='x',\n"
            "    scalar=d, batch=dm, axiom_class='metric',\n"
            "))\n",
            filename=self._PLUGIN_FILE,
            select=["RP010"],
        )
        assert codes(result) == ["RP010"]
        assert "oracle=" in result.active[0].message
        assert "differential oracle" in result.active[0].message

    def test_positive_plugin_registration_missing_axiom_class(self):
        result = analyze_source(
            "MetricPlugin(name='mine', aliases=(), citation='x',\n"
            "             scalar=d, batch=dm, oracle=d_naive)\n",
            filename=self._PLUGIN_FILE,
            select=["RP010"],
        )
        assert codes(result) == ["RP010"]
        assert "axiom_class=" in result.active[0].message

    def test_positive_plugin_missing_both_yields_two_findings(self):
        result = analyze_source(
            "registry.MetricPlugin(name='mine', scalar=d, batch=dm)\n",
            filename=self._PLUGIN_FILE,
            select=["RP010"],
        )
        assert codes(result) == ["RP010", "RP010"]

    def test_negative_plugin_registration_complete(self):
        result = analyze_source(
            "PLUGIN = register_metric(MetricPlugin(\n"
            "    name='mine', aliases=('m',), citation='x',\n"
            "    scalar=d, batch=dm, oracle=d_naive, axiom_class='metric',\n"
            "))\n",
            filename=self._PLUGIN_FILE,
            select=["RP010"],
        )
        assert codes(result) == []

    def test_negative_plugin_check_ignores_other_modules(self):
        # same incomplete call outside repro/metrics/plugins/: not this
        # rule's business (tests construct partial plugins legitimately)
        result = analyze_source(
            "MetricPlugin(name='mine', scalar=d, batch=dm)\n",
            filename="src/repro/metrics/registry.py",
            select=["RP010"],
        )
        assert codes(result) == []
        result = analyze_source(
            "MetricPlugin(name='mine', scalar=d, batch=dm)\n",
            filename="src/repro/metrics/plugins/__init__.py",
            select=["RP010"],
        )
        assert codes(result) == []

    def test_plugin_registration_noqa_suppressed(self):
        result = analyze_source(
            "MetricPlugin(name='mine', scalar=d, batch=dm, axiom_class='metric')"
            "  # repro: noqa[RP010] — oracle registered separately\n",
            filename=self._PLUGIN_FILE,
            select=["RP010"],
        )
        assert codes(result) == []
        assert [f.rule for f in result.findings] == ["RP010"]
        assert result.findings[0].suppressed


class TestRP011ObsInstrumentation:
    """Kernel modules must report into repro.obs; no bare prints in the library."""

    _KERNEL = "__all__ = ['my_kernel']\n\n\ndef my_kernel(x):\n    return x\n"

    def test_positive_uninstrumented_kernel_module(self):
        result = analyze_source(
            self._KERNEL,
            filename="src/repro/metrics/mykernel.py",
            select=["RP011"],
        )
        assert codes(result) == ["RP011"]
        assert "my_kernel" in result.active[0].message
        assert result.active[0].severity is Severity.ERROR

    def test_negative_traced_module(self):
        result = analyze_source(
            "from repro import obs\n"
            "__all__ = ['my_kernel']\n"
            "def my_kernel(x):\n"
            "    with obs.trace('metrics.my_kernel'):\n"
            "        return x\n",
            filename="src/repro/metrics/mykernel.py",
            select=["RP011"],
        )
        assert codes(result) == []

    def test_negative_counter_only_instrumentation(self):
        # exact work counters are the obs layer's cross-check currency
        result = analyze_source(
            "from repro import obs\n"
            "__all__ = ['my_kernel']\n"
            "def my_kernel(x):\n"
            "    obs.add('aggregate.my_kernel.items', len(x))\n"
            "    return x\n",
            filename="src/repro/aggregate/mykernel.py",
            select=["RP011"],
        )
        assert codes(result) == []

    def test_negative_traced_decorator_via_from_import(self):
        result = analyze_source(
            "from repro.obs import traced\n"
            "__all__ = ['my_kernel']\n"
            "@traced('db.my_kernel')\n"
            "def my_kernel(x):\n"
            "    return x\n",
            filename="src/repro/db/mykernel.py",
            select=["RP011"],
        )
        assert codes(result) == []

    def test_negative_class_only_exports(self):
        result = analyze_source(
            "__all__ = ['Container']\n\n\nclass Container:\n    pass\n",
            filename="src/repro/db/container.py",
            select=["RP011"],
        )
        assert codes(result) == []

    def test_negative_outside_kernel_packages(self):
        result = analyze_source(
            self._KERNEL,
            filename="src/repro/core/mykernel.py",
            select=["RP011"],
        )
        assert codes(result) == []

    def test_reasoned_noqa_suppresses(self):
        result = analyze_source(
            "__all__ = ['my_kernel']  # repro: noqa[RP011] — brute-force test oracle\n"
            "def my_kernel(x):\n"
            "    return x\n",
            filename="src/repro/metrics/mykernel.py",
            select=["RP011"],
        )
        assert codes(result) == []
        assert [f.rule for f in result.findings] == ["RP011"]
        assert result.findings[0].suppressed

    def test_bare_noqa_requires_a_reason(self):
        result = analyze_source(
            "__all__ = ['my_kernel']  # repro: noqa[RP011]\n"
            "def my_kernel(x):\n"
            "    return x\n",
            filename="src/repro/metrics/mykernel.py",
            select=["RP011"],
        )
        assert codes(result) == ["RP011"]
        assert "needs a reason" in result.active[0].message

    def test_positive_bare_print_in_library_code(self):
        result = analyze_source(
            "def helper(x):\n    print(x)\n    return x\n",
            filename="src/repro/metrics/helper.py",
            select=["RP011"],
        )
        assert codes(result) == ["RP011"]
        assert "print" in result.active[0].message

    def test_negative_print_with_explicit_stream(self):
        result = analyze_source(
            "import sys\n\n\ndef helper(x):\n"
            "    print(x, file=sys.stderr)\n"
            "    return x\n",
            filename="src/repro/metrics/helper.py",
            select=["RP011"],
        )
        assert codes(result) == []

    def test_negative_print_in_cli_module(self):
        result = analyze_source(
            "def report(x):\n    print(x)\n",
            filename="src/repro/somepkg/cli.py",
            select=["RP011"],
        )
        assert codes(result) == []


class TestSuppressions:
    def test_noqa_silences_a_specific_code(self):
        result = analyze_source(
            "def f(x, acc=[]):  # repro: noqa[RP005]\n"
            "    return acc\n",
            select=["RP005"],
        )
        assert codes(result) == []
        assert [f.rule for f in result.findings] == ["RP005"]
        assert result.findings[0].suppressed

    def test_noqa_with_wrong_code_does_not_silence(self):
        result = analyze_source(
            "def f(x, acc=[]):  # repro: noqa[RP001]\n"
            "    return acc\n",
            select=["RP005"],
        )
        assert codes(result) == ["RP005"]

    def test_bare_noqa_silences_everything_on_the_line(self):
        result = analyze_source(
            "def f(x, acc=[]):  # repro: noqa\n"
            "    return acc\n",
            select=["RP005"],
        )
        assert codes(result) == []


class TestReporters:
    def _result(self):
        return analyze_source(
            "def f(x, acc=[]):\n    return acc\n", select=["RP005"]
        )

    def test_text_report_has_location_and_summary(self):
        text = render_text(self._result())
        assert "RP005" in text
        assert ":1:" in text.splitlines()[0]
        assert "1 error(s)" in text

    def test_json_report_round_trips(self):
        payload = json.loads(render_json(self._result()))
        assert payload["schema"] == "repro.analysis/1"
        assert payload["errors"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "RP005"
        assert finding["severity"] == "error"
        assert finding["suppressed"] is False


def _run_cli(*argv: str, cwd: Path = REPO_ROOT) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


class TestCommandLine:
    def test_shipped_tree_is_clean(self):
        """Acceptance criterion: the shipped tree has zero unbaselined
        findings under every rule (RP001–RP016)."""
        completed = _run_cli("src", "--baseline", "analysis-baseline.json", "--no-cache")
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "0 error(s)" in completed.stdout

    def test_seeded_violation_exits_nonzero(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x, acc=[]):\n    return acc\n", encoding="utf-8")
        completed = _run_cli(str(bad), cwd=tmp_path)
        assert completed.returncode == 1
        assert "RP005" in completed.stdout

    def test_json_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("try:\n    x = 1\nexcept:\n    pass\n", encoding="utf-8")
        completed = _run_cli(str(bad), "--format", "json", cwd=tmp_path)
        assert completed.returncode == 1
        payload = json.loads(completed.stdout)
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "RP007"

    def test_fail_on_never(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x, acc=[]):\n    return acc\n", encoding="utf-8")
        completed = _run_cli(str(bad), "--fail-on", "never", cwd=tmp_path)
        assert completed.returncode == 0

    def test_list_rules(self):
        completed = _run_cli("--list-rules")
        assert completed.returncode == 0
        for code in ALL_CODES:
            assert code in completed.stdout

    def test_select_subset(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x, acc=[]):\n    return acc\n", encoding="utf-8")
        completed = _run_cli(str(bad), "--select", "RP007", cwd=tmp_path)
        assert completed.returncode == 0  # RP005 violation not selected

    def test_missing_path_is_usage_error(self):
        completed = _run_cli("no/such/path.py")
        assert completed.returncode == 2


class TestUnparseableFiles:
    def test_syntax_error_reported_not_crashing(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n", encoding="utf-8")
        result = analyze_paths([bad], root=tmp_path)
        assert result.parse_errors
        assert result.exit_code() == 1


class TestRP011ServeCoverage:
    """PR 8: repro.serve counts as a kernel package for RP011."""

    _PLANTED = "__all__ = ['handle']\n\n\ndef handle(x):\n    return x\n"

    def test_planted_uninstrumented_serve_module_flagged(self):
        result = analyze_source(
            self._PLANTED, filename="src/repro/serve/planted.py", select=["RP011"]
        )
        assert codes(result) == ["RP011"]
        assert "handle" in result.active[0].message

    def test_instrumented_serve_module_clean(self):
        result = analyze_source(
            "from repro import obs\n"
            "__all__ = ['handle']\n"
            "def handle(x):\n"
            "    obs.add('serve.handled')\n"
            "    return x\n",
            filename="src/repro/serve/planted.py",
            select=["RP011"],
        )
        assert codes(result) == []


class TestRP011DecomposeCoverage:
    """PR 9: aggregate/decompose.py needs obs evidence like its siblings."""

    def test_planted_uninstrumented_decompose_module_flagged(self):
        result = analyze_source(
            "__all__ = ['kemeny_decomposed']\n\n\n"
            "def kemeny_decomposed(rankings):\n"
            "    return rankings\n",
            filename="src/repro/aggregate/decompose.py",
            select=["RP011"],
        )
        assert codes(result) == ["RP011"]
        assert "kemeny_decomposed" in result.active[0].message

    def test_real_decompose_module_carries_evidence(self):
        import pathlib

        source = pathlib.Path("src/repro/aggregate/decompose.py").read_text(
            encoding="utf-8"
        )
        result = analyze_source(
            source,
            filename="src/repro/aggregate/decompose.py",
            select=["RP011"],
        )
        assert codes(result) == []

    def test_shipped_serve_modules_instrumented_or_reasoned(self):
        """The checked-in serving package passes its own coverage rule."""
        for path in sorted((REPO_ROOT / "src" / "repro" / "serve").glob("*.py")):
            result = analyze_source(
                path.read_text(encoding="utf-8"),
                filename=path.relative_to(REPO_ROOT).as_posix(),
                select=["RP011"],
            )
            assert codes(result) == [], path
