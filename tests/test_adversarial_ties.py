"""Adversarial tie-structure battery: degenerate bucket shapes.

The structures where tie-handling bugs hide: the single bucket of all n
items (every pair tied), n singletons (no ties), and k singletons over
one giant bucket of n−k. For every pair drawn from the battery the three
implementation layers — object-level metrics, ``metrics.fast`` array
kernels, and ``metrics.batch`` matrix entries — must agree *exactly*
(these are integer/half-integer values; no tolerance), and the
Proposition 6 closed form ``K_Haus = |U| + max(|S|, |T|)`` must hold.
"""

from __future__ import annotations

import pytest

from repro.core.partial_ranking import PartialRanking
from repro.generators import adversarial_profile_workload
from repro.metrics import (
    footrule,
    footrule_hausdorff,
    kendall,
    kendall_hausdorff_counts,
    kendall_hausdorff_large,
    kendall_large,
    pair_counts,
    pair_counts_large,
    pairwise_distance_matrix,
)
from repro.metrics.hausdorff import kendall_hausdorff


def _battery(n: int) -> list[tuple[str, PartialRanking]]:
    domain = list(range(n))
    shapes = [
        ("single-bucket", PartialRanking.single_bucket(domain)),
        ("all-singletons", PartialRanking.from_sequence(domain)),
        ("all-singletons-reversed", PartialRanking.from_sequence(domain[::-1])),
    ]
    for k in {1, n // 2, n - 1} - {0, n}:
        shapes.append(
            (
                f"{k}-singletons-then-bucket",
                PartialRanking([*[[i] for i in domain[:k]], domain[k:]]),
            )
        )
        shapes.append(
            ("top-" + str(k), PartialRanking.top_k(domain[:k], domain)),
        )
    return shapes


def _pairs(n: int):
    shapes = _battery(n)
    return [
        pytest.param(sigma, tau, id=f"n{n}:{name_a}|{name_b}")
        for i, (name_a, sigma) in enumerate(shapes)
        for name_b, tau in shapes[i:]
    ]


@pytest.mark.parametrize("sigma,tau", [p for n in (2, 5, 9) for p in _pairs(n)])
class TestLayersAgreeExactly:
    def test_pair_counts_all_layers(self, sigma, tau):
        reference = pair_counts(sigma, tau)
        assert pair_counts_large(sigma, tau) == reference

    def test_kendall_all_layers(self, sigma, tau):
        for p in (0.0, 0.25, 0.5, 1.0):
            object_level = kendall(sigma, tau, p)
            array_level = kendall_large(sigma, tau, p)
            assert object_level == array_level  # bit-for-bit, no tolerance
        matrix = pairwise_distance_matrix([sigma, tau], "kendall")
        object_half = kendall(sigma, tau)
        assert matrix[0, 1] == object_half
        assert matrix[1, 0] == object_half

    def test_kendall_hausdorff_all_layers(self, sigma, tau):
        closed_form = kendall_hausdorff_counts(sigma, tau)
        assert kendall_hausdorff_large(sigma, tau) == closed_form
        assert kendall_hausdorff(sigma, tau) == closed_form  # Theorem 5 witnesses
        matrix = pairwise_distance_matrix([sigma, tau], "kendall_hausdorff")
        assert matrix[0, 1] == closed_form

    def test_footrule_all_layers(self, sigma, tau):
        object_level = footrule(sigma, tau)
        matrix = pairwise_distance_matrix([sigma, tau], "footrule")
        assert matrix[0, 1] == object_level

    def test_footrule_hausdorff_all_layers(self, sigma, tau):
        object_level = footrule_hausdorff(sigma, tau)
        matrix = pairwise_distance_matrix([sigma, tau], "footrule_hausdorff")
        assert matrix[0, 1] == object_level

    def test_proposition_6_closed_form(self, sigma, tau):
        counts = pair_counts(sigma, tau)
        expected = counts.discordant + max(
            counts.tied_first_only, counts.tied_second_only
        )
        assert kendall_hausdorff_counts(sigma, tau) == expected


class TestExtremeValues:
    """Known closed-form values on the extreme shapes."""

    def test_single_bucket_vs_singletons(self):
        n = 6
        bucket = PartialRanking.single_bucket(range(n))
        chain = PartialRanking.from_sequence(range(n))
        counts = pair_counts(bucket, chain)
        total = n * (n - 1) // 2
        assert counts.tied_first_only == total  # every pair tied in bucket only
        assert counts.discordant == 0
        assert kendall(bucket, chain) == pytest.approx(total / 2)
        assert kendall_hausdorff_counts(bucket, chain) == total

    def test_identical_single_buckets_are_distance_zero(self):
        bucket = PartialRanking.single_bucket(range(7))
        assert kendall(bucket, bucket) == pytest.approx(0.0)
        assert footrule(bucket, bucket) == pytest.approx(0.0)
        assert kendall_hausdorff_counts(bucket, bucket) == 0

    def test_full_reversal_attains_kendall_maximum(self):
        n = 7
        forward = PartialRanking.from_sequence(range(n))
        backward = PartialRanking.from_sequence(range(n - 1, -1, -1))
        assert kendall_hausdorff_counts(forward, backward) == n * (n - 1) // 2

    def test_adversarial_workload_shapes(self):
        workload = adversarial_profile_workload(12, seed=3)
        bucket, full, mixed, topk = workload.rankings
        assert bucket.type == (12,)
        assert full.is_full
        assert max(mixed.type) == 12 - 3  # k=3 singletons + giant bucket
        assert sorted(mixed.type)[:-1] == [1, 1, 1]
        assert topk.is_top_k(3)
        domains = {sigma.domain for sigma in workload.rankings}
        assert len(domains) == 1  # one common domain for the whole profile
