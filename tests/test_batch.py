"""The batch layer: bit-for-bit equality with the per-pair metrics.

Part of the axiom/equivalence matrix (RP008): the array fast path
(``kendall_large``, ``kendall_hausdorff_large``, ``pair_counts_large``)
and the all-pairs layer (``pair_counts_matrix``,
``pairwise_distance_matrix``) are checked against the object
implementations and the O(n²)/exponential oracles with ``==`` — no
tolerances; the kernels are exact by construction.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from tests.conftest import bucket_order_pairs, bucket_orders
from repro.core import DomainCodec, PartialRanking
from repro.errors import DomainMismatchError, InvalidRankingError
from repro.generators.workloads import (
    db_profile_workload,
    mallows_profile_workload,
    random_profile_workload,
)
from repro.metrics import (
    footrule,
    footrule_hausdorff,
    kendall,
    kendall_hausdorff,
    kendall_hausdorff_large,
    kendall_large,
    pair_counts,
    pair_counts_large,
    pairwise_distance_matrix,
)
from repro.metrics.batch import METRIC_ALIASES, pair_counts_matrix
from repro.metrics.fast import count_inversions_array
from repro.metrics.kendall import kendall_naive

METRIC_FNS = {
    "kendall": kendall,
    "footrule": footrule,
    "kendall_hausdorff": lambda s, t: float(kendall_hausdorff(s, t)),
    "footrule_hausdorff": footrule_hausdorff,
}

WORKLOADS = {
    "mallows": lambda: mallows_profile_workload(16, 6, seed=11).rankings,
    "random": lambda: random_profile_workload(20, 5, seed=5).rankings,
    "db": lambda: db_profile_workload(seed=2).rankings,
}


def _inversions_oracle(values: list[int]) -> int:
    return sum(
        1
        for i in range(len(values))
        for j in range(i + 1, len(values))
        if values[i] > values[j]
    )


class TestCountInversionsArray:
    def test_small_cases(self) -> None:
        assert count_inversions_array([]) == 0
        assert count_inversions_array([3]) == 0
        assert count_inversions_array([1, 2]) == 0
        assert count_inversions_array([2, 1]) == 1
        assert count_inversions_array([2, 2]) == 0

    def test_reversed_worst_case(self) -> None:
        n = 257  # off power-of-two: exercises the sentinel padding
        assert count_inversions_array(np.arange(n)[::-1]) == n * (n - 1) // 2

    @given(st.lists(st.integers(min_value=0, max_value=6), max_size=40))
    def test_matches_quadratic_oracle(self, values: list[int]) -> None:
        assert count_inversions_array(np.array(values, dtype=np.int64)) == (
            _inversions_oracle(values)
        )


class TestFastPath:
    @given(bucket_order_pairs(max_size=7))
    def test_pair_counts_large_matches_fenwick(self, pair) -> None:
        sigma, tau = pair
        assert pair_counts_large(sigma, tau) == pair_counts(sigma, tau)

    @given(bucket_order_pairs(max_size=6), st.floats(min_value=0.0, max_value=1.0))
    def test_kendall_large_matches_fast(self, pair, p: float) -> None:
        sigma, tau = pair
        assert kendall_large(sigma, tau, p) == kendall(sigma, tau, p)

    @given(bucket_order_pairs(max_size=6), st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]))
    def test_kendall_large_matches_naive(self, pair, p: float) -> None:
        # dyadic p: every term is exact in float64, so the naive oracle's
        # sequential accumulation agrees bit for bit
        sigma, tau = pair
        assert kendall_large(sigma, tau, p) == kendall_naive(sigma, tau, p)

    @given(bucket_order_pairs(max_size=6))
    def test_kendall_hausdorff_large_matches_witnesses(self, pair) -> None:
        sigma, tau = pair
        assert kendall_hausdorff_large(sigma, tau) == kendall_hausdorff(sigma, tau)

    def test_domain_mismatch_rejected(self) -> None:
        sigma = PartialRanking.from_sequence([1, 2, 3])
        tau = PartialRanking.from_sequence([1, 2, 4])
        with pytest.raises(DomainMismatchError):
            pair_counts_large(sigma, tau)

    def test_bad_penalty_rejected(self) -> None:
        sigma = PartialRanking.from_sequence([1, 2])
        with pytest.raises(InvalidRankingError):
            kendall_large(sigma, sigma, p=1.5)


class TestPairCountsMatrix:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_strategies_agree(self, workload: str) -> None:
        profile = WORKLOADS[workload]()
        dense = pair_counts_matrix(profile, strategy="dense")
        per_pair = pair_counts_matrix(profile, strategy="pairs")
        assert (dense.discordant == per_pair.discordant).all()
        assert (dense.tied_first_only == per_pair.tied_first_only).all()
        assert (dense.tied_both == per_pair.tied_both).all()
        assert (dense.concordant == per_pair.concordant).all()

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_entries_match_scalar_pair_counts(self, workload: str) -> None:
        profile = WORKLOADS[workload]()
        matrix = pair_counts_matrix(profile)
        for i in range(len(profile)):
            for j in range(len(profile)):
                assert matrix.pair_counts(i, j) == pair_counts(profile[i], profile[j])

    def test_tied_second_only_is_transpose(self) -> None:
        profile = WORKLOADS["random"]()
        matrix = pair_counts_matrix(profile)
        assert (matrix.tied_second_only == matrix.tied_first_only.T).all()

    def test_unknown_strategy_rejected(self) -> None:
        with pytest.raises(ValueError, match="strategy"):
            pair_counts_matrix(WORKLOADS["random"](), strategy="wat")

    def test_bad_penalty_rejected(self) -> None:
        matrix = pair_counts_matrix(WORKLOADS["random"]())
        with pytest.raises(InvalidRankingError):
            matrix.kendall(p=-0.1)


class TestPairwiseDistanceMatrix:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("metric", sorted(METRIC_FNS))
    def test_bit_for_bit_vs_per_pair(self, workload: str, metric: str) -> None:
        profile = WORKLOADS[workload]()
        matrix = pairwise_distance_matrix(profile, metric)
        fn = METRIC_FNS[metric]
        for i in range(len(profile)):
            for j in range(len(profile)):
                expected = 0.0 if i == j else fn(profile[i], profile[j])
                assert matrix[i, j] == expected

    @pytest.mark.parametrize("p", [0.0, 0.25, 0.5, 1.0])
    def test_kendall_p_sweep(self, p: float) -> None:
        profile = WORKLOADS["mallows"]()
        matrix = pairwise_distance_matrix(profile, "k_prof", p=p)
        for i in range(len(profile)):
            for j in range(i + 1, len(profile)):
                assert matrix[i, j] == kendall(profile[i], profile[j], p)

    def test_aliases_cover_all_four_metrics(self) -> None:
        profile = WORKLOADS["random"]()
        for alias, canonical in METRIC_ALIASES.items():
            assert (
                pairwise_distance_matrix(profile, alias)
                == pairwise_distance_matrix(profile, canonical)
            ).all()

    def test_unknown_metric_rejected(self) -> None:
        with pytest.raises(ValueError, match="unknown metric"):
            pairwise_distance_matrix(WORKLOADS["random"](), "hamming")

    def test_empty_profile_rejected(self) -> None:
        with pytest.raises(DomainMismatchError):
            pairwise_distance_matrix([], "kendall")

    @pytest.mark.parametrize("metric", sorted(METRIC_FNS))
    def test_jobs_equals_serial(self, metric: str) -> None:
        profile = WORKLOADS["mallows"]()
        serial = pairwise_distance_matrix(profile, metric, strategy="pairs")
        pooled = pairwise_distance_matrix(profile, metric, strategy="pairs", jobs=2)
        assert (serial == pooled).all()

    @given(
        st.lists(bucket_orders(min_size=3, max_size=3), min_size=2, max_size=4),
        st.sampled_from(sorted(METRIC_FNS)),
    )
    def test_symmetry_zero_diagonal_and_agreement(self, profile, metric: str) -> None:
        matrix = pairwise_distance_matrix(profile, metric)
        assert (matrix == matrix.T).all()
        assert (np.diag(matrix) == 0.0).all()
        fn = METRIC_FNS[metric]
        for i in range(len(profile)):
            for j in range(i + 1, len(profile)):
                assert matrix[i, j] == fn(profile[i], profile[j])


class TestContractsUnderDebug:
    def test_batch_agrees_with_checked_metrics(self, monkeypatch) -> None:
        """Exercise the batch layer while the runtime metric contracts of
        the scalar reference calls are live (REPRO_DEBUG=1)."""
        monkeypatch.setenv("REPRO_DEBUG", "1")
        profile = WORKLOADS["random"]()[:4]
        for metric, fn in METRIC_FNS.items():
            matrix = pairwise_distance_matrix(profile, metric)
            for i in range(len(profile)):
                for j in range(len(profile)):
                    expected = 0.0 if i == j else fn(profile[i], profile[j])
                    assert matrix[i, j] == expected


class TestCodecAndCaches:
    def test_codec_interned_per_domain(self) -> None:
        sigma = PartialRanking([[1, 2], [3]])
        tau = PartialRanking([[3], [1, 2]])
        assert DomainCodec.for_profile([sigma, tau]) is DomainCodec.for_domain(
            sigma.domain
        )

    def test_dense_arrays_cached_by_codec_identity(self) -> None:
        sigma = PartialRanking([[1, 2], [3]])
        codec = DomainCodec.for_domain(sigma.domain)
        first = sigma.dense_arrays(codec)
        second = sigma.dense_arrays(codec)
        assert first[0] is second[0] and first[1] is second[1]

    def test_dense_arrays_read_only(self) -> None:
        sigma = PartialRanking([[1, 2], [3]])
        bucket_index, positions = sigma.dense_arrays(DomainCodec.for_domain(sigma.domain))
        with pytest.raises(ValueError):
            bucket_index[0] = 9
        with pytest.raises(ValueError):
            positions[0] = 9.0

    def test_encode_values(self) -> None:
        sigma = PartialRanking([["a", "b"], ["c"]])
        codec = DomainCodec.for_domain(sigma.domain)
        assert codec.items == ("a", "b", "c")
        bucket_index, positions = sigma.dense_arrays(codec)
        assert bucket_index.tolist() == [0, 0, 1]
        assert positions.tolist() == [1.5, 1.5, 3.0]

    def test_encode_rejects_foreign_domain(self) -> None:
        sigma = PartialRanking.from_sequence([1, 2, 3])
        codec = DomainCodec.for_domain(frozenset({4, 5}))
        with pytest.raises(DomainMismatchError):
            codec.encode(sigma)
