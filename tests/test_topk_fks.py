"""Tests for the FKS varying-active-domain top-k measures (§A.3)."""

from __future__ import annotations

from itertools import permutations

import pytest

from repro.core.partial_ranking import PartialRanking
from repro.errors import InvalidRankingError
from repro.metrics.footrule import footrule
from repro.metrics.kendall import kendall
from repro.metrics.topk_fks import (
    active_domain,
    as_partial_rankings,
    fks_footrule,
    fks_footrule_hausdorff,
    fks_kendall,
    fks_kendall_hausdorff,
)

ALL_MEASURES = (
    fks_kendall,
    fks_footrule,
    fks_kendall_hausdorff,
    fks_footrule_hausdorff,
)


class TestProjection:
    def test_active_domain_is_union(self):
        assert active_domain(["a", "b"], ["b", "c"]) == {"a", "b", "c"}

    def test_projection_shapes(self):
        sigma, tau = as_partial_rankings(["a", "b"], ["c", "d"])
        assert sigma.domain == tau.domain == {"a", "b", "c", "d"}
        assert sigma.is_top_k(2)
        assert tau.is_top_k(2)

    def test_disjoint_lists_bottom_buckets(self):
        sigma, _ = as_partial_rankings(["a"], ["b", "c"])
        assert sigma.bucket_of("b") == {"b", "c"}

    def test_identical_lists_are_full_over_their_items(self):
        sigma, tau = as_partial_rankings(["a", "b"], ["a", "b"])
        assert sigma == tau
        assert sigma.is_full

    def test_empty_list_rejected(self):
        with pytest.raises(InvalidRankingError):
            fks_kendall([], ["a"])

    def test_duplicates_rejected(self):
        with pytest.raises(InvalidRankingError):
            fks_kendall(["a", "a"], ["b"])


class TestAgreementWithFixedDomain:
    def test_same_domain_lists_match_fixed_domain_metrics(self):
        """When the two lists cover the same items, the FKS values equal the
        fixed-domain metrics on the corresponding partial rankings (A.3:
        'our definitions are then exactly the same in the two scenarios')."""
        top1, top2 = ["a", "b", "c"], ["c", "a", "b"]
        sigma = PartialRanking.from_sequence(top1)
        tau = PartialRanking.from_sequence(top2)
        assert fks_kendall(top1, top2) == kendall(sigma, tau)
        assert fks_footrule(top1, top2) == footrule(sigma, tau)

    def test_symmetry(self):
        for measure in ALL_MEASURES:
            assert measure(["a", "b"], ["c", "b"]) == measure(["c", "b"], ["a", "b"])

    def test_regularity(self):
        for measure in ALL_MEASURES:
            assert measure(["a", "b"], ["a", "b"]) == 0


class TestNearMetricBehaviour:
    """A.3's punchline: the same formulas are metrics over a fixed domain
    but only NEAR metrics when the active domain varies per pair."""

    def _all_top2_lists(self):
        return [list(t) for t in permutations("abcd", 2)]

    def test_triangle_violations_exist_for_kendall(self):
        lists = self._all_top2_lists()
        violations = 0
        worst = 1.0
        for x in lists:
            for y in lists:
                for z in lists:
                    through = fks_kendall(x, y) + fks_kendall(y, z)
                    direct = fks_kendall(x, z)
                    if direct > through + 1e-9:
                        violations += 1
                        if through > 0:
                            worst = max(worst, direct / through)
        assert violations > 0, "expected triangle violations in the FKS scenario"
        # ... but only by a bounded factor: it is a NEAR metric
        assert worst <= 2.0 + 1e-9

    def test_fixed_domain_restriction_is_a_metric(self):
        """Restricting to lists over one fixed item set removes violations."""
        lists = [list(t) for t in permutations("abc", 3)]
        for x in lists:
            for y in lists:
                for z in lists:
                    assert fks_kendall(x, z) <= (
                        fks_kendall(x, y) + fks_kendall(y, z) + 1e-9
                    )

    def test_known_violation_example(self):
        # d(ab, cd) = 5 > d(ab, ac) + d(ac, cd) = 1 + 2
        assert fks_kendall(["a", "b"], ["c", "d"]) == 5.0
        assert fks_kendall(["a", "b"], ["a", "c"]) == 1.0
        assert fks_kendall(["a", "c"], ["c", "d"]) == 2.0


class TestHausdorffVariants:
    def test_hausdorff_dominates_profile_versions(self):
        top1, top2 = ["a", "b"], ["b", "c"]
        assert fks_kendall_hausdorff(top1, top2) >= fks_kendall(top1, top2)
        assert fks_footrule_hausdorff(top1, top2) >= fks_footrule(top1, top2) / 2

    def test_disjoint_lists_kendall_structure(self):
        # ab vs cd over {a,b,c,d}: the 4 cross pairs are strictly reversed
        # (U=4), (a,b) is tied only in tau (S=1), (c,d) only in sigma (T=1),
        # so Prop 6 gives K_Haus = 4 + max(1,1) = 5
        assert fks_kendall_hausdorff(["a", "b"], ["c", "d"]) == 5
