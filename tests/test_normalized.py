"""Tests for the normalized metric variants."""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given

from repro.aggregate.exact import all_partial_rankings
from repro.core.partial_ranking import PartialRanking
from repro.metrics.footrule import footrule
from repro.metrics.kendall import kendall
from repro.metrics.normalized import (
    NORMALIZED_METRICS,
    max_footrule,
    max_kendall,
    normalized_footrule,
    normalized_footrule_hausdorff,
    normalized_kendall,
    normalized_kendall_hausdorff,
)
from tests.conftest import bucket_order_pairs


class TestMaxima:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_maxima_verified_exhaustively(self, n):
        """The claimed maxima are exact over ALL bucket-order pairs."""
        rankings = list(all_partial_rankings(list(range(n))))
        max_k = max(
            kendall(a, b) for a, b in combinations(rankings, 2)
        )
        max_f = max(
            footrule(a, b) for a, b in combinations(rankings, 2)
        )
        assert max_k == max_kendall(n)
        assert max_f == max_footrule(n)

    def test_reversal_attains_both(self):
        sigma = PartialRanking.from_sequence(range(6))
        assert kendall(sigma, sigma.reverse()) == max_kendall(6)
        assert footrule(sigma, sigma.reverse()) == max_footrule(6)


class TestNormalizedValues:
    @given(bucket_order_pairs())
    def test_all_in_unit_interval(self, pair):
        sigma, tau = pair
        for metric in NORMALIZED_METRICS.values():
            value = metric(sigma, tau)
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_reversal_is_exactly_one(self):
        sigma = PartialRanking.from_sequence("abcde")
        assert normalized_kendall(sigma, sigma.reverse()) == 1.0
        assert normalized_footrule(sigma, sigma.reverse()) == 1.0
        assert normalized_kendall_hausdorff(sigma, sigma.reverse()) == 1.0
        assert normalized_footrule_hausdorff(sigma, sigma.reverse()) == 1.0

    def test_identity_is_zero(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        for metric in NORMALIZED_METRICS.values():
            assert metric(sigma, sigma) == 0.0

    def test_single_item_domain_is_zero(self):
        single = PartialRanking([["x"]])
        for metric in NORMALIZED_METRICS.values():
            assert metric(single, single) == 0.0

    @given(bucket_order_pairs())
    def test_normalization_preserves_ordering(self, pair):
        """Same-domain comparisons are unchanged by the constant scaling."""
        sigma, tau = pair
        raw = kendall(sigma, tau)
        scaled = normalized_kendall(sigma, tau)
        assert scaled == pytest.approx(raw / max_kendall(len(sigma)) if len(sigma) > 1 else 0.0)

    def test_penalty_parameter_forwarded(self):
        sigma = PartialRanking([["a", "b"]])
        tau = PartialRanking.from_sequence("ab")
        assert normalized_kendall(sigma, tau, p=1.0) == 2 * normalized_kendall(
            sigma, tau, p=0.5
        )
