"""Tests for the Hausdorff metrics and their characterizations (§3.2, §4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.partial_ranking import PartialRanking
from repro.core.refine import full_refinements
from repro.errors import DomainMismatchError
from repro.metrics.footrule import footrule_full
from repro.metrics.hausdorff import (
    footrule_hausdorff,
    footrule_hausdorff_bruteforce,
    hausdorff_witnesses,
    kendall_hausdorff,
    kendall_hausdorff_bruteforce,
    kendall_hausdorff_counts,
)
from repro.metrics.kendall import kendall_full
from tests.conftest import bucket_order_pairs


class TestWitnesses:
    def test_witnesses_are_full_refinements(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        tau = PartialRanking([["a"], ["b", "c"]])
        w = hausdorff_witnesses(sigma, tau)
        assert w.sigma_1.is_full and w.sigma_1.is_refinement_of(sigma)
        assert w.sigma_2.is_full and w.sigma_2.is_refinement_of(sigma)
        assert w.tau_1.is_full and w.tau_1.is_refinement_of(tau)
        assert w.tau_2.is_full and w.tau_2.is_refinement_of(tau)

    def test_sigma1_breaks_sigma_ties_against_tau(self):
        sigma = PartialRanking([["a", "b"]])
        tau = PartialRanking([["a"], ["b"]])
        w = hausdorff_witnesses(sigma, tau)
        # tau has a ahead; the adversarial refinement of sigma puts b ahead
        assert w.sigma_1.ahead("b", "a")
        assert w.tau_1.ahead("a", "b")

    def test_domain_mismatch_rejected(self):
        with pytest.raises(DomainMismatchError):
            hausdorff_witnesses(PartialRanking([["a"]]), PartialRanking([["b"]]))

    def test_bad_rho_rejected(self):
        sigma = PartialRanking([["a", "b"]])
        with pytest.raises(DomainMismatchError):
            hausdorff_witnesses(sigma, sigma, rho=PartialRanking([["a", "b"]]))
        with pytest.raises(DomainMismatchError):
            hausdorff_witnesses(sigma, sigma, rho=PartialRanking.from_sequence("xy"))


class TestAgainstBruteForce:
    @settings(max_examples=40)
    @given(bucket_order_pairs(max_size=5))
    def test_kendall_hausdorff_matches_bruteforce(self, pair):
        sigma, tau = pair
        assert kendall_hausdorff(sigma, tau) == kendall_hausdorff_bruteforce(sigma, tau)

    @settings(max_examples=40)
    @given(bucket_order_pairs(max_size=5))
    def test_footrule_hausdorff_matches_bruteforce(self, pair):
        sigma, tau = pair
        assert footrule_hausdorff(sigma, tau) == pytest.approx(
            footrule_hausdorff_bruteforce(sigma, tau)
        )

    @given(bucket_order_pairs())
    def test_prop6_matches_witness_construction(self, pair):
        sigma, tau = pair
        assert kendall_hausdorff_counts(sigma, tau) == kendall_hausdorff(sigma, tau)


class TestChoiceOfRho:
    @given(bucket_order_pairs(max_size=5))
    def test_any_rho_gives_same_distance(self, pair):
        """Theorem 5 holds for an arbitrary rho — verify with two choices."""
        sigma, tau = pair
        items = sorted(sigma.domain, key=repr)
        rho_forward = PartialRanking.from_sequence(items)
        rho_backward = PartialRanking.from_sequence(list(reversed(items)))
        assert kendall_hausdorff(sigma, tau, rho_forward) == kendall_hausdorff(
            sigma, tau, rho_backward
        )
        assert footrule_hausdorff(sigma, tau, rho_forward) == pytest.approx(
            footrule_hausdorff(sigma, tau, rho_backward)
        )


class TestLemma3And4:
    """The min/max structure behind Theorem 5, checked directly."""

    @settings(max_examples=25)
    @given(bucket_order_pairs(max_size=5))
    def test_min_over_tau_refinements_attained_by_star(self, pair):
        # Lemma 3: for full sigma, min_{tau' refines tau} d(sigma, tau')
        # is attained at sigma * tau.
        sigma_partial, tau = pair
        for sigma in list(full_refinements(sigma_partial))[:2]:
            best_f = min(
                footrule_full(sigma, tau_full) for tau_full in full_refinements(tau)
            )
            best_k = min(
                kendall_full(sigma, tau_full) for tau_full in full_refinements(tau)
            )
            star_refinement = tau.refined_by(sigma)
            assert footrule_full(sigma, star_refinement) == pytest.approx(best_f)
            assert kendall_full(sigma, star_refinement) == best_k


class TestSpecialCases:
    def test_full_rankings_reduce_to_classical_metrics(self):
        sigma = PartialRanking.from_sequence("abcd")
        tau = PartialRanking.from_sequence("badc")
        assert kendall_hausdorff(sigma, tau) == kendall_full(sigma, tau)
        assert footrule_hausdorff(sigma, tau) == footrule_full(sigma, tau)

    def test_single_bucket_vs_full(self):
        # K_Haus between the all-tied ranking and any full ranking is
        # |S| = C(n,2): every pair is tied in one, split in the other.
        n = 5
        single = PartialRanking.single_bucket(range(n))
        full = PartialRanking.from_sequence(range(n))
        assert kendall_hausdorff(single, full) == n * (n - 1) // 2

    def test_regularity_on_identical_partial_rankings(self):
        # Hausdorff distance between a set and itself is 0, so the metrics
        # are regular even though the refinement sets have positive diameter.
        sigma = PartialRanking([["a", "b"], ["c"]])
        assert kendall_hausdorff(sigma, sigma) == 0
        assert footrule_hausdorff(sigma, sigma) == 0.0

    def test_distinct_full_rankings_positive(self):
        sigma = PartialRanking.from_sequence("ab")
        tau = PartialRanking.from_sequence("ba")
        assert kendall_hausdorff(sigma, tau) == 1
