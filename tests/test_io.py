"""Tests for ranking serialization (JSON and CSV)."""

from __future__ import annotations

import io

import pytest
from hypothesis import given

from repro.core.partial_ranking import PartialRanking
from repro.io import (
    SerializationError,
    dump_profile_csv,
    dump_profile_json,
    dump_ranking_json,
    load_profile_csv,
    load_profile_json,
    load_ranking_json,
    ranking_from_dict,
    ranking_to_dict,
)
from tests.conftest import bucket_orders


class TestDictRoundTrip:
    def test_round_trip(self):
        sigma = PartialRanking([["b", "a"], ["c"]])
        assert ranking_from_dict(ranking_to_dict(sigma)) == sigma

    def test_missing_key_rejected(self):
        with pytest.raises(SerializationError):
            ranking_from_dict({"nope": []})

    def test_wrong_shape_rejected(self):
        with pytest.raises(SerializationError):
            ranking_from_dict({"buckets": "ab"})
        with pytest.raises(SerializationError):
            ranking_from_dict({"buckets": [["a"], []]})

    @given(bucket_orders())
    def test_round_trip_property(self, sigma):
        assert ranking_from_dict(ranking_to_dict(sigma)) == sigma


class TestJson:
    def test_single_ranking_file_round_trip(self, tmp_path):
        sigma = PartialRanking([["x"], ["y", "z"]])
        path = tmp_path / "ranking.json"
        dump_ranking_json(sigma, path)
        assert load_ranking_json(path) == sigma

    def test_stream_round_trip(self):
        sigma = PartialRanking([["a", "b"]])
        buffer = io.StringIO()
        dump_ranking_json(sigma, buffer)
        buffer.seek(0)
        assert load_ranking_json(buffer) == sigma

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_ranking_json(path)

    def test_profile_round_trip(self, tmp_path):
        profile = {
            "alpha": PartialRanking([["a"], ["b", "c"]]),
            "beta": PartialRanking([["c", "b", "a"]]),
        }
        path = tmp_path / "profile.json"
        dump_profile_json(profile, path)
        assert load_profile_json(path) == profile

    def test_anonymous_profile_gets_names(self, tmp_path):
        rankings = [PartialRanking([["a", "b"]]), PartialRanking([["b"], ["a"]])]
        path = tmp_path / "profile.json"
        dump_profile_json(rankings, path)
        loaded = load_profile_json(path)
        assert set(loaded) == {"ranking_0", "ranking_1"}

    def test_duplicate_names_rejected(self, tmp_path):
        path = tmp_path / "dup.json"
        path.write_text(
            '{"rankings": [{"name": "x", "buckets": [["a"]]},'
            ' {"name": "x", "buckets": [["a"]]}]}'
        )
        with pytest.raises(SerializationError):
            load_profile_json(path)

    def test_profile_missing_key_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"buckets": [["a"]]}')
        with pytest.raises(SerializationError):
            load_profile_json(path)


class TestCsv:
    def test_round_trip(self, tmp_path):
        profile = {
            "alpha": PartialRanking([["a"], ["b", "c"]]),
            "beta": PartialRanking([["c", "b", "a"]]),
        }
        path = tmp_path / "profile.csv"
        dump_profile_csv(profile, path)
        assert load_profile_csv(path) == profile

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(SerializationError):
            load_profile_csv(path)

    def test_non_integer_bucket_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("ranking,item,bucket\nr,a,first\n")
        with pytest.raises(SerializationError):
            load_profile_csv(path)

    def test_negative_bucket_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("ranking,item,bucket\nr,a,-1\n")
        with pytest.raises(SerializationError):
            load_profile_csv(path)

    def test_gapped_bucket_indices_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("ranking,item,bucket\nr,a,0\nr,b,2\n")
        with pytest.raises(SerializationError):
            load_profile_csv(path)

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("ranking,item,bucket\n")
        with pytest.raises(SerializationError):
            load_profile_csv(path)

    def test_duplicate_item_in_ranking_rejected(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text("ranking,item,bucket\nr,a,0\nr,a,1\n")
        with pytest.raises(SerializationError):
            load_profile_csv(path)
