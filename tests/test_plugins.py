"""The metric plugin registry and the two first-party plugins.

Covers the registry API (registration, aliasing, collisions, the shared
unknown-metric error), bit-for-bit agreement of each plugin's scalar /
batch / jobs=2 kernels with its plain-Python oracle on Mallows, random,
and adversarial tie workloads (plus Hypothesis-drawn bucket orders), the
normalized wrappers, the REPRO_DEBUG contract layer over the plugin
scalars, the proven-upper-bound normalizers, and the registry-aware
median/minmax aggregation entry point.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings

from repro.aggregate.minmax import OBJECTIVES, AggregateResult, aggregate
from repro.aggregate.objective import max_distance, resolve_metric, total_distance
from repro.analysis.contracts import ENV_FLAG
from repro.core.partial_ranking import PartialRanking
from repro.errors import (
    AggregationError,
    DomainMismatchError,
    InvalidRankingError,
    UnknownMetricError,
)
from repro.generators.workloads import (
    adversarial_profile_workload,
    mallows_profile_workload,
    random_profile_workload,
)
from repro.metrics.footrule import footrule
from repro.metrics.normalized import normalized_metric
from repro.metrics.plugins.top_difference import (
    alpha_prefix,
    harmonic_alphas,
    max_top_difference,
    top_difference,
    top_difference_matrix,
    top_difference_naive,
)
from repro.metrics.plugins.weighted_footrule import (
    harmonic_weights,
    max_weighted_footrule,
    weight_table,
    weighted_footrule,
    weighted_footrule_matrix,
    weighted_footrule_naive,
)
from repro.metrics.registry import (
    MetricPlugin,
    canonical_metric,
    get_metric,
    metric_names,
    register_metric,
    registered_metrics,
    unregister_metric,
)
from tests.conftest import bucket_order_pairs, bucket_orders

#: (scalar, oracle, batch) triples for the parametrized agreement tests.
_PLUGINS = (
    ("weighted_footrule", weighted_footrule, weighted_footrule_naive, weighted_footrule_matrix),
    ("top_difference", top_difference, top_difference_naive, top_difference_matrix),
)

_WORKLOADS = (
    mallows_profile_workload(12, 6, phi=0.3, seed=5, max_bucket=4),
    random_profile_workload(10, 6, seed=7),
    adversarial_profile_workload(11, seed=9),
)


def _all_partial_rankings(items: tuple[int, ...]):
    """Every bucket order over ``items`` (ordered set partitions)."""
    if not items:
        yield ()
        return
    for k in range(1, len(items) + 1):
        for first in itertools.combinations(items, k):
            rest = tuple(x for x in items if x not in first)
            for tail in _all_partial_rankings(rest):
                yield (first, *tail)


class TestRegistry:
    def test_builtins_and_plugins_registered(self):
        names = {plugin.name for plugin in registered_metrics()}
        assert {
            "kendall",
            "footrule",
            "kendall_hausdorff",
            "footrule_hausdorff",
            "weighted_footrule",
            "top_difference",
        } <= names

    def test_aliases_resolve_to_canonical(self):
        for alias, canonical in (
            ("k_prof", "kendall"),
            ("f_haus", "footrule_hausdorff"),
            ("wf", "weighted_footrule"),
            ("td", "top_difference"),
            ("top_diff", "top_difference"),
        ):
            assert canonical_metric(alias) == canonical
            assert get_metric(alias).name == canonical

    def test_metric_names_contains_every_spelling(self):
        names = metric_names()
        assert list(names) == sorted(names)
        assert "wf" in names and "weighted_footrule" in names

    def test_unknown_metric_error_lists_spellings(self):
        with pytest.raises(UnknownMetricError, match="unknown metric") as exc_info:
            get_metric("spearman")
        message = str(exc_info.value)
        for spelling in ("kendall", "wf", "top_difference"):
            assert spelling in message
        # the shared error is both a ValueError and an AggregationError
        assert isinstance(exc_info.value, ValueError)
        assert isinstance(exc_info.value, AggregationError)

    def test_registration_collision_rejected(self):
        plugin = get_metric("weighted_footrule")
        clone = MetricPlugin(
            name="wf_clone",
            aliases=("wf",),  # collides with the registered alias
            citation=plugin.citation,
            scalar=plugin.scalar,
            batch=plugin.batch,
            oracle=plugin.oracle,
            axiom_class="metric",
        )
        with pytest.raises(ValueError, match="already registered"):
            register_metric(clone)
        assert "wf_clone" not in metric_names()

    def test_reregistering_same_plugin_is_a_noop(self):
        plugin = get_metric("top_difference")
        assert register_metric(plugin) is plugin

    def test_register_unregister_roundtrip(self):
        plugin = MetricPlugin(
            name="test_scratch_metric",
            aliases=("tsm",),
            citation="test-only",
            scalar=footrule,
            batch=weighted_footrule_matrix,
            oracle=footrule,
            axiom_class="metric",
        )
        register_metric(plugin)
        try:
            assert get_metric("tsm") is plugin
            # late registrations propagate into the verify catalog
            from repro.verify.registry import all_checks

            ids = {info.check_id for info in all_checks()}
            assert "oracle:plugin-test_scratch_metric" in ids
            assert "relation:symmetry-test_scratch_metric" in ids
            assert "relation:regularity-test_scratch_metric" in ids
        finally:
            unregister_metric("test_scratch_metric")
        with pytest.raises(UnknownMetricError):
            get_metric("tsm")

    def test_axiom_class_validated(self):
        with pytest.raises(ValueError, match="axiom_class"):
            MetricPlugin(
                name="bad",
                aliases=(),
                citation="",
                scalar=footrule,
                batch=weighted_footrule_matrix,
                oracle=footrule,
                axiom_class="vibes",
            )


class TestPluginKernelAgreement:
    @pytest.mark.parametrize("name,scalar,oracle,batch", _PLUGINS)
    @pytest.mark.parametrize("workload", _WORKLOADS, ids=lambda w: w.name)
    def test_scalar_batch_oracle_bit_for_bit(self, name, scalar, oracle, batch, workload):
        rankings = workload.rankings
        matrix = batch(rankings)
        pooled = batch(rankings, jobs=2)
        assert matrix.shape == (len(rankings), len(rankings))
        assert np.array_equal(matrix, pooled)
        assert np.array_equal(matrix, matrix.T)
        for i, sigma in enumerate(rankings):
            for j, tau in enumerate(rankings):
                expected = oracle(sigma, tau)
                assert scalar(sigma, tau) == expected
                assert matrix[i, j] == expected

    @pytest.mark.parametrize("name,scalar,oracle,batch", _PLUGINS)
    @given(pair=bucket_order_pairs(max_size=8))
    @settings(max_examples=60)
    def test_hypothesis_pairs_bit_for_bit(self, name, scalar, oracle, batch, pair):
        sigma, tau = pair
        expected = oracle(sigma, tau)
        assert scalar(sigma, tau) == expected
        assert float(batch((sigma, tau))[0, 1]) == expected

    @pytest.mark.parametrize("name,scalar,oracle,batch", _PLUGINS)
    @given(sigma=bucket_orders(max_size=8))
    @settings(max_examples=40)
    def test_symmetry_and_regularity(self, name, scalar, oracle, batch, sigma):
        assert scalar(sigma, sigma) == 0.0
        reverse = sigma.reverse()
        assert scalar(sigma, reverse) == scalar(reverse, sigma)

    @pytest.mark.parametrize("name,scalar,oracle,batch", _PLUGINS)
    def test_domain_mismatch_rejected(self, name, scalar, oracle, batch):
        sigma = PartialRanking([[1], [2]])
        tau = PartialRanking([[1], [3]])
        with pytest.raises(DomainMismatchError):
            scalar(sigma, tau)
        with pytest.raises(DomainMismatchError):
            oracle(sigma, tau)

    def test_dispatch_through_pairwise_distance_matrix(self):
        from repro.metrics.batch import pairwise_distance_matrix

        rankings = mallows_profile_workload(9, 5, seed=3).rankings
        for spelling, batch in (
            ("weighted_footrule", weighted_footrule_matrix),
            ("wf", weighted_footrule_matrix),
            ("top_difference", top_difference_matrix),
            ("td", top_difference_matrix),
        ):
            assert np.array_equal(
                pairwise_distance_matrix(rankings, spelling), batch(rankings)
            )


class TestPluginParameters:
    def test_custom_weights_quantized_consistently(self):
        sigma = PartialRanking([[0, 1], [2], [3]])
        tau = PartialRanking([[3], [2], [0], [1]])
        weights = [0.9, 0.5, 0.3, 0.1]
        expected = weighted_footrule_naive(sigma, tau, weights=weights)
        assert weighted_footrule(sigma, tau, weights=weights) == expected
        matrix = weighted_footrule_matrix((sigma, tau), weights=weights)
        assert matrix[0, 1] == expected

    def test_custom_alphas_quantized_consistently(self):
        sigma = PartialRanking([[0], [1, 2], [3]])
        tau = PartialRanking([[2], [3], [1], [0]])
        alphas = [1.0, 0.25, 0.125]
        expected = top_difference_naive(sigma, tau, alphas=alphas)
        assert top_difference(sigma, tau, alphas=alphas) == expected
        matrix = top_difference_matrix((sigma, tau), alphas=alphas)
        assert matrix[0, 1] == expected

    def test_invalid_weights_rejected(self):
        sigma = PartialRanking([[0], [1]])
        with pytest.raises(InvalidRankingError):
            weighted_footrule(sigma, sigma, weights=[1.0])  # wrong shape
        with pytest.raises(InvalidRankingError):
            weighted_footrule(sigma, sigma, weights=[1.0, -2.0])
        with pytest.raises(InvalidRankingError):
            top_difference(sigma, sigma, alphas=[-1.0])

    def test_weight_tables_are_dyadic_and_increasing(self):
        table = weight_table(9)
        assert np.all(np.diff(table) > 0)
        # dyadic grid: scaling by 2^21 yields exact integers
        scaled = table * (1 << 21)
        assert np.array_equal(scaled, np.rint(scaled))
        prefix = alpha_prefix(9)
        assert np.all(np.diff(prefix) > 0)
        assert prefix[0] == 0.0

    def test_harmonic_defaults_have_expected_shape(self):
        assert harmonic_weights(5).shape == (5,)
        assert harmonic_alphas(5).shape == (4,)
        assert harmonic_weights(0).shape == (0,)
        assert harmonic_alphas(1).shape == (0,)


class TestUpperBounds:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_bounds_dominate_exhaustive_maximum(self, n):
        """max_value is a proven upper bound (not necessarily attained)."""
        items = tuple(range(n))
        all_rankings = [
            PartialRanking([list(bucket) for bucket in shape])
            for shape in _all_partial_rankings(items)
        ]
        wf_max = max(
            weighted_footrule(s, t) for s in all_rankings for t in all_rankings
        )
        td_max = max(
            top_difference(s, t) for s in all_rankings for t in all_rankings
        )
        assert wf_max <= max_weighted_footrule(n)
        assert td_max <= max_top_difference(n)

    def test_zero_domain(self):
        assert max_weighted_footrule(0) == 0.0
        assert max_top_difference(0) == 0.0

    def test_normalized_metric_stays_in_unit_interval(self):
        rankings = random_profile_workload(8, 5, seed=11).rankings
        for name in ("weighted_footrule", "top_difference", "k_prof", "f_haus"):
            scaled = normalized_metric(name)
            for sigma in rankings:
                for tau in rankings:
                    value = scaled(sigma, tau)
                    assert 0.0 <= value <= 1.0
            assert scaled(rankings[0], rankings[0]) == 0.0

    def test_normalized_metric_unknown_and_unnormalizable(self):
        with pytest.raises(UnknownMetricError):
            normalized_metric("spearman")
        plugin = get_metric("weighted_footrule")
        bare = MetricPlugin(
            name="test_no_max",
            aliases=(),
            citation="test-only",
            scalar=plugin.scalar,
            batch=plugin.batch,
            oracle=plugin.oracle,
            axiom_class="metric",
        )
        register_metric(bare)
        try:
            with pytest.raises(AggregationError, match="max_value"):
                normalized_metric("test_no_max")
        finally:
            unregister_metric("test_no_max")


class TestContractsOverPlugins:
    @pytest.fixture
    def debug_mode(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")

    def test_plugin_scalars_pass_contracts(self, debug_mode):
        rankings = mallows_profile_workload(8, 4, seed=13).rankings
        for sigma in rankings:
            for tau in rankings:
                assert weighted_footrule(sigma, tau) == weighted_footrule_naive(sigma, tau)
                assert top_difference(sigma, tau) == top_difference_naive(sigma, tau)

    def test_contract_layer_checks_symmetry_under_debug(self, debug_mode):
        sigma = PartialRanking([[0], [1], [2]])
        tau = PartialRanking([[2], [0, 1]])
        # contract-wrapped calls still return the exact dyadic value
        assert weighted_footrule(sigma, tau) == weighted_footrule(tau, sigma)
        assert top_difference(sigma, tau) == top_difference(tau, sigma)


class TestAggregateEntryPoint:
    def _profile(self):
        return [
            PartialRanking([[1], [2], [3], [4]]),
            PartialRanking([[2], [1], [3, 4]]),
            PartialRanking([[4], [3], [2], [1]]),
        ]

    @pytest.mark.parametrize("objective", OBJECTIVES)
    @pytest.mark.parametrize("metric", ["f_prof", "k_prof", "wf", "td"])
    def test_exhaustive_small_domains(self, objective, metric):
        result = aggregate(self._profile(), objective, metric)
        assert isinstance(result, AggregateResult)
        assert result.exact
        assert result.kind == objective
        assert result.metric == get_metric(metric).name
        # the reported objective matches a recomputation
        profile = self._profile()
        recomputed = (
            max_distance(result.ranking, profile, metric)
            if objective == "minmax"
            else total_distance(result.ranking, profile, metric)
        )
        assert result.objective == recomputed

    def test_exhaustive_is_optimal_for_minmax(self):
        profile = self._profile()
        result = aggregate(profile, "minmax", "f_prof")
        items = sorted(profile[0].domain, key=lambda x: (type(x).__name__, repr(x)))
        best = min(
            max_distance(PartialRanking.from_sequence(perm), profile, "f_prof")
            for perm in itertools.permutations(items)
        )
        assert result.objective == best

    def test_minmax_protects_worst_voter(self):
        profile = self._profile()
        median = aggregate(profile, "median", "f_prof")
        minmax = aggregate(profile, "minmax", "f_prof")
        assert max_distance(minmax.ranking, profile) <= max_distance(median.ranking, profile)
        assert total_distance(median.ranking, profile) <= total_distance(minmax.ranking, profile)

    def test_local_search_on_large_domain(self):
        profile = random_profile_workload(10, 5, seed=17).rankings
        result = aggregate(profile, "minmax", "wf")
        assert not result.exact
        assert result.metric == "weighted_footrule"
        # deterministic: same call, same answer
        again = aggregate(profile, "minmax", "wf")
        assert again.ranking == result.ranking
        assert again.objective == result.objective

    def test_local_search_never_worse_than_borda_seed(self):
        profile = random_profile_workload(9, 6, seed=19).rankings
        for objective in OBJECTIVES:
            result = aggregate(profile, objective, "f_prof")
            evaluate = max_distance if objective == "minmax" else total_distance
            assert result.objective == evaluate(result.ranking, profile, "f_prof")

    def test_require_exact_raises_beyond_cap(self):
        profile = random_profile_workload(10, 4, seed=23).rankings
        with pytest.raises(AggregationError, match="require_exact"):
            aggregate(profile, "minmax", require_exact=True)
        # raising the cap instead certifies the result
        result = aggregate(profile[:2], "median", max_exact=10, require_exact=True)
        assert result.exact

    def test_unknown_objective_and_metric(self):
        profile = self._profile()
        with pytest.raises(AggregationError, match="unknown objective"):
            aggregate(profile, "mean")
        with pytest.raises(UnknownMetricError, match="unknown metric"):
            aggregate(profile, "median", "spearman")
        with pytest.raises(AggregationError, match="max_exact"):
            aggregate(profile, "median", max_exact=0)

    def test_callable_metric(self):
        result = aggregate(self._profile(), "minmax", footrule)
        assert result.metric == "footrule"
        assert result.exact

    def test_resolve_metric_passthrough_and_registry(self):
        assert resolve_metric(footrule) is footrule
        assert resolve_metric("wf") is get_metric("weighted_footrule").scalar
        with pytest.raises(UnknownMetricError):
            resolve_metric("nope")
