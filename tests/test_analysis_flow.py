"""Tests for the interprocedural flow layer and rules RP012–RP016.

Covers four layers:

* **call graph** — edge resolution through aliases, self dispatch,
  lambdas handed to ``parallel_map``, registry indirection;
* **effect summaries / fixpoint** — module-state writes (incl.
  cross-module), env reads, unordered-return and may-raise propagation;
* **rule fixtures** — one flagging, one clean, and one suppressed
  fixture per rule (the self-application guarantee: each rule catches
  its planted violation);
* **engine infrastructure** — result cache correctness and speed,
  baseline gating, SARIF output, parallel rule-group equivalence.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, apply_baseline, write_baseline
from repro.analysis.cache import cache_key, load_cached, store_cached
from repro.analysis.cli import _run_with_cache
from repro.analysis.engine import (
    Project,
    SourceFile,
    analyze_paths,
    analyze_source,
)
from repro.analysis.flow.callgraph import build_call_graph
from repro.analysis.flow.dtypes import DType, annotation_dtype, dtype_of_text
from repro.analysis.flow.fixpoint import FlowAnalysis
from repro.analysis.reporters import render_sarif

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def make_project(files: dict[str, str]) -> Project:
    """An in-memory project; keys are repo-style paths (src/repro/...)."""
    project = Project(root=REPO_ROOT)
    for name, text in files.items():
        project.files.append(SourceFile.parse(Path(name), text=text))
    return project


def flow_of(files: dict[str, str]) -> FlowAnalysis:
    return FlowAnalysis.build(make_project(files))


def codes(result) -> list[str]:
    return [finding.rule for finding in result.active]


class TestCallGraph:
    def test_direct_and_aliased_call_edges(self):
        graph = build_call_graph(
            make_project(
                {
                    "src/repro/fxp/a.py": (
                        "from repro.fxp import b as helpers\n"
                        "def caller():\n"
                        "    local()\n"
                        "    helpers.work()\n"
                        "def local():\n"
                        "    pass\n"
                    ),
                    "src/repro/fxp/b.py": "def work():\n    pass\n",
                }
            )
        )
        callees = graph.callees("repro.fxp.a.caller")
        assert "repro.fxp.a.local" in callees
        assert "repro.fxp.b.work" in callees

    def test_self_method_dispatch(self):
        graph = build_call_graph(
            make_project(
                {
                    "src/repro/fxp/c.py": (
                        "class Thing:\n"
                        "    def outer(self):\n"
                        "        self.inner()\n"
                        "    def inner(self):\n"
                        "        pass\n"
                    )
                }
            )
        )
        assert "repro.fxp.c.Thing.inner" in graph.callees("repro.fxp.c.Thing.outer")

    def test_lambda_to_parallel_map_is_a_parallel_root(self):
        graph = build_call_graph(
            make_project(
                {
                    "src/repro/fxp/d.py": (
                        "from repro.parallel import parallel_map\n"
                        "def run(xs):\n"
                        "    return parallel_map(lambda x: x + 1, xs)\n"
                    )
                }
            )
        )
        roots = [name for name in graph.parallel_roots if "<lambda" in name]
        assert roots, graph.parallel_roots

    def test_function_to_executor_map_is_a_parallel_root(self):
        graph = build_call_graph(
            make_project(
                {
                    "src/repro/fxp/e.py": (
                        "from concurrent.futures import ProcessPoolExecutor\n"
                        "def work(x):\n"
                        "    return x\n"
                        "def run(xs):\n"
                        "    with ProcessPoolExecutor() as pool:\n"
                        "        return list(pool.map(work, xs))\n"
                    )
                }
            )
        )
        assert "repro.fxp.e.work" in graph.parallel_roots
        sink, _ = graph.parallel_roots["repro.fxp.e.work"]
        assert sink == "pool.map"

    def test_registry_indirection_adds_ref_edge(self):
        graph = build_call_graph(
            make_project(
                {
                    "src/repro/fxp/f.py": (
                        "from repro.verify.oracles import OracleEntry\n"
                        "def reference(x):\n"
                        "    return x\n"
                        "def variant(x):\n"
                        "    return x\n"
                        "def build():\n"
                        "    return OracleEntry(\n"
                        "        reference=reference,\n"
                        "        variants=(('fast', variant),),\n"
                        "    )\n"
                    )
                }
            )
        )
        assert "repro.fxp.f.reference" in graph.registry_roots
        assert "repro.fxp.f.variant" in graph.registry_roots
        assert "repro.fxp.f.reference" in graph.callees("repro.fxp.f.build")

    def test_nested_def_is_a_separate_node(self):
        graph = build_call_graph(
            make_project(
                {
                    "src/repro/fxp/g.py": (
                        "def outer():\n"
                        "    def inner():\n"
                        "        pass\n"
                        "    return inner\n"
                    )
                }
            )
        )
        assert graph.functions["repro.fxp.g.outer.inner"].kind == "nested"
        assert "repro.fxp.g.outer.inner" in graph.callees("repro.fxp.g.outer")


class TestSummariesAndFixpoint:
    def test_cross_module_state_write_via_alias(self):
        flow = flow_of(
            {
                "src/repro/fxp/state.py": "_CACHE = {}\n",
                "src/repro/fxp/writer.py": (
                    "from repro.fxp import state\n"
                    "def put(key, value):\n"
                    "    state._CACHE[key] = value\n"
                ),
            }
        )
        summary = flow.summary("repro.fxp.writer.put")
        assert summary is not None
        targets = [write.target for write in summary.module_writes]
        assert "repro.fxp.state._CACHE" in targets

    def test_local_shadowing_is_not_a_module_write(self):
        flow = flow_of(
            {
                "src/repro/fxp/h.py": (
                    "_CACHE = {}\n"
                    "def pure(key):\n"
                    "    _CACHE = {}\n"
                    "    _CACHE[key] = 1\n"
                    "    return _CACHE\n"
                )
            }
        )
        summary = flow.summary("repro.fxp.h.pure")
        assert summary is not None and not summary.module_writes

    def test_env_read_forms(self):
        flow = flow_of(
            {
                "src/repro/fxp/envs.py": (
                    "import os\n"
                    "def a():\n"
                    "    return os.environ['X']\n"
                    "def b():\n"
                    "    return os.environ.get('Y')\n"
                    "def c():\n"
                    "    return os.getenv('Z')\n"
                    "def d():\n"
                    "    return 'W' in os.environ\n"
                )
            }
        )
        for fn, variable in (("a", "X"), ("b", "Y"), ("c", "Z")):
            summary = flow.summary(f"repro.fxp.envs.{fn}")
            assert summary is not None
            assert [read.variable for read in summary.env_reads] == [variable]
        summary_d = flow.summary("repro.fxp.envs.d")
        assert summary_d is not None and len(summary_d.env_reads) == 1

    def test_bare_reraise_is_not_a_raise_site(self):
        flow = flow_of(
            {
                "src/repro/fxp/i.py": (
                    "def passthrough():\n"
                    "    try:\n"
                    "        return 1\n"
                    "    except ValueError:\n"
                    "        raise\n"
                )
            }
        )
        summary = flow.summary("repro.fxp.i.passthrough")
        assert summary is not None and summary.raise_lines == ()

    def test_parallel_reachability_has_witness_chain(self):
        flow = flow_of(
            {
                "src/repro/fxp/j.py": (
                    "from repro.parallel import parallel_map\n"
                    "def leaf():\n"
                    "    pass\n"
                    "def worker(x):\n"
                    "    leaf()\n"
                    "def run(xs):\n"
                    "    parallel_map(worker, xs)\n"
                )
            }
        )
        chain = flow.parallel_chain("repro.fxp.j.leaf")
        assert chain == ["repro.fxp.j.worker", "repro.fxp.j.leaf"]
        assert flow.parallel_chain("repro.fxp.j.run") is None

    def test_unordered_return_propagates_through_call_chain(self):
        flow = flow_of(
            {
                "src/repro/fxp/k.py": (
                    "def base() -> frozenset[int]:\n"
                    "    return frozenset((1, 2))\n"
                    "def wrapper():\n"
                    "    return base()\n"
                )
            }
        )
        assert "repro.fxp.k.base" in flow.returns_unordered
        assert "repro.fxp.k.wrapper" in flow.returns_unordered

    def test_ordered_container_of_sets_is_not_unordered(self):
        flow = flow_of(
            {
                "src/repro/fxp/m.py": (
                    "def buckets() -> tuple[frozenset[int], ...]:\n"
                    "    return (frozenset((1,)),)\n"
                )
            }
        )
        assert "repro.fxp.m.buckets" not in flow.returns_unordered

    def test_may_raise_is_transitive(self):
        flow = flow_of(
            {
                "src/repro/fxp/n.py": (
                    "def check(x):\n"
                    "    if x < 0:\n"
                    "        raise ValueError('no')\n"
                    "def caller(x):\n"
                    "    check(x)\n"
                )
            }
        )
        assert "repro.fxp.n.check" in flow.may_raise
        assert "repro.fxp.n.caller" in flow.may_raise


class TestDtypeLattice:
    def test_text_classification(self):
        assert dtype_of_text("np.int64") == DType.INT64
        assert dtype_of_text("np.int32") == DType.NARROW_INT
        assert dtype_of_text("np.float64") == DType.FLOAT64
        assert dtype_of_text("np.bool_") == DType.BOOL

    def test_annotation_requires_array_type(self):
        import ast as ast_mod

        node = ast_mod.parse("def f() -> npt.NDArray[np.int64]: ...").body[0]
        assert annotation_dtype(node.returns) == DType.INT64
        plain = ast_mod.parse("def f() -> int: ...").body[0]
        assert annotation_dtype(plain.returns) == DType.UNKNOWN


RP012_FLAGGING = (
    "from repro.parallel import parallel_map\n"
    "_CACHE = {}\n"
    "def worker(x):\n"
    "    _CACHE[x] = x\n"
    "    return x\n"
    "def run(xs):\n"
    "    return parallel_map(worker, xs)\n"
)

RP012_CLEAN = (
    "from repro.parallel import parallel_map\n"
    "_CACHE = {}\n"
    "def worker(x):\n"
    "    return x + 1\n"
    "def run(xs):\n"
    "    _CACHE['last'] = parallel_map(worker, xs)\n"
    "    return _CACHE['last']\n"
)


class TestRP012ParallelSafety:
    def test_flagging_worker_writes_module_state(self):
        result = analyze_source(RP012_FLAGGING, select=["RP012"])
        assert codes(result) == ["RP012"]
        (finding,) = result.active
        assert "_CACHE" in finding.message and "worker-reachable" in finding.message

    def test_clean_parent_side_write_is_fine(self):
        assert codes(analyze_source(RP012_CLEAN, select=["RP012"])) == []

    def test_reasoned_noqa_suppresses(self):
        text = RP012_FLAGGING.replace(
            "    _CACHE[x] = x\n",
            "    _CACHE[x] = x  # repro: noqa[RP012] — per-process memo, rebuilt in each worker\n",
        )
        assert codes(analyze_source(text, select=["RP012"])) == []

    def test_bare_noqa_demands_a_reason(self):
        text = RP012_FLAGGING.replace(
            "    _CACHE[x] = x\n",
            "    _CACHE[x] = x  # repro: noqa[RP012]\n",
        )
        result = analyze_source(text, select=["RP012"])
        assert codes(result) == ["RP012"]
        assert "requires a reason" in result.active[0].message

    def test_lambda_handed_to_pool_is_flagged(self):
        result = analyze_source(
            "from repro.parallel import parallel_map\n"
            "def run(xs):\n"
            "    return parallel_map(lambda x: x + 1, xs)\n",
            select=["RP012"],
        )
        assert codes(result) == ["RP012"]
        assert "picklable" in result.active[0].message

    def test_transitive_write_through_helper(self):
        result = analyze_source(
            "from repro.parallel import parallel_map\n"
            "_SEEN = []\n"
            "def record(x):\n"
            "    _SEEN.append(x)\n"
            "def worker(x):\n"
            "    record(x)\n"
            "    return x\n"
            "def run(xs):\n"
            "    return parallel_map(worker, xs)\n",
            select=["RP012"],
        )
        assert codes(result) == ["RP012"]
        assert "worker -> record" in result.active[0].message


RP013_FLAGGING = (
    "def render(items):\n"
    "    s = set(items)\n"
    "    return list(s)\n"
)


class TestRP013Determinism:
    def test_flagging_list_over_set(self):
        result = analyze_source(RP013_FLAGGING, select=["RP013"])
        assert codes(result) == ["RP013"]

    def test_clean_sorted_wrapper(self):
        assert (
            codes(
                analyze_source(
                    "def render(items):\n"
                    "    s = set(items)\n"
                    "    return sorted(s)\n",
                    select=["RP013"],
                )
            )
            == []
        )

    def test_noqa_suppresses(self):
        text = RP013_FLAGGING.replace(
            "    return list(s)\n",
            "    return list(s)  # repro: noqa[RP013]\n",
        )
        assert codes(analyze_source(text, select=["RP013"])) == []

    def test_order_insensitive_consumers_are_fine(self):
        assert (
            codes(
                analyze_source(
                    "def stats(items):\n"
                    "    s = set(items)\n"
                    "    return len(s), sum(s), min(s), max(s)\n",
                    select=["RP013"],
                )
            )
            == []
        )

    def test_returned_comprehension_over_set_is_flagged(self):
        result = analyze_source(
            "def render(items):\n"
            "    return [x for x in set(items) if x]\n",
            select=["RP013"],
        )
        assert codes(result) == ["RP013"]

    def test_interprocedural_unordered_return(self):
        result = analyze_source(
            "def domain() -> frozenset[int]:\n"
            "    return frozenset((1, 2))\n"
            "def render():\n"
            "    return list(domain())\n",
            select=["RP013"],
        )
        assert codes(result) == ["RP013"]

    def test_accumulating_loop_over_set_is_flagged(self):
        result = analyze_source(
            "def render(items):\n"
            "    out = []\n"
            "    for x in set(items):\n"
            "        out.append(x)\n"
            "    return out\n",
            select=["RP013"],
        )
        assert codes(result) == ["RP013"]


RP014_FILE = "src/repro/aggregate/batch.py"

RP014_FLAGGING = (
    "import numpy as np\n"
    "import numpy.typing as npt\n"
    "def count(mask: npt.NDArray[np.bool_]):\n"
    "    return mask.sum(axis=0)\n"
)


class TestRP014DtypeSoundness:
    def test_flagging_bool_sum_without_dtype(self):
        result = analyze_source(RP014_FLAGGING, filename=RP014_FILE, select=["RP014"])
        assert codes(result) == ["RP014"]
        assert "default-accumulator" in result.active[0].message

    def test_clean_explicit_accumulator(self):
        text = RP014_FLAGGING.replace(
            "mask.sum(axis=0)", "mask.sum(axis=0, dtype=np.int64)"
        )
        assert codes(analyze_source(text, filename=RP014_FILE, select=["RP014"])) == []

    def test_noqa_suppresses(self):
        text = RP014_FLAGGING.replace(
            "    return mask.sum(axis=0)\n",
            "    return mask.sum(axis=0)  # repro: noqa[RP014]\n",
        )
        assert codes(analyze_source(text, filename=RP014_FILE, select=["RP014"])) == []

    def test_narrowing_astype_is_flagged(self):
        result = analyze_source(
            "import numpy as np\n"
            "import numpy.typing as npt\n"
            "def shrink(a: npt.NDArray[np.int64]):\n"
            "    return a.astype(np.int32)\n",
            filename=RP014_FILE,
            select=["RP014"],
        )
        assert codes(result) == ["RP014"]
        assert "narrowing" in result.active[0].message

    def test_unrounded_float_to_int_cast_is_flagged(self):
        result = analyze_source(
            "import numpy as np\n"
            "import numpy.typing as npt\n"
            "def halve(a: npt.NDArray[np.int64]):\n"
            "    return (a / 2).astype(np.int64)\n",
            filename=RP014_FILE,
            select=["RP014"],
        )
        assert codes(result) == ["RP014"]
        assert "unrounded-cast" in result.active[0].message

    def test_rounded_cast_is_clean(self):
        result = analyze_source(
            "import numpy as np\n"
            "import numpy.typing as npt\n"
            "def halve(a: npt.NDArray[np.int64]):\n"
            "    return np.rint(a / 2).astype(np.int64)\n",
            filename=RP014_FILE,
            select=["RP014"],
        )
        assert codes(result) == []

    def test_outside_kernel_modules_not_scanned(self):
        result = analyze_source(
            RP014_FLAGGING, filename="src/repro/fxp/free.py", select=["RP014"]
        )
        assert codes(result) == []


RP014_ARENA_FILE = "src/repro/core/arena.py"

RP014_GUARDED_NARROWING = (
    "import numpy as np\n"
    "import numpy.typing as npt\n"
    "from repro.core.arena import int32_fits\n"
    "def store(a: npt.NDArray[np.int64], n: int):\n"
    "    if int32_fits(n):\n"
    "        return a.astype(np.int32)\n"
    "    return a\n"
)

RP014_GUARDED_REDUCTION = (
    "import numpy as np\n"
    "import numpy.typing as npt\n"
    "from repro.core.arena import int32_fits\n"
    "def total(a: npt.NDArray[np.int64], n: int):\n"
    "    if int32_fits(n):\n"
    "        narrow = a.astype(np.int32)\n"
    "        return narrow.sum()\n"
    "    return a.sum()\n"
)


class TestRP014SanctionedArenaNarrowing:
    """The int32 arena storage mode: guarded narrowing is legal,
    unguarded narrowing and narrow accumulators stay hazards."""

    def test_arena_module_is_scanned(self):
        result = analyze_source(
            RP014_FLAGGING, filename=RP014_ARENA_FILE, select=["RP014"]
        )
        assert codes(result) == ["RP014"]

    def test_mmap_lists_module_is_scanned(self):
        result = analyze_source(
            RP014_FLAGGING, filename="src/repro/db/mmap_lists.py", select=["RP014"]
        )
        assert codes(result) == ["RP014"]

    def test_unguarded_narrowing_flags_and_names_the_guard(self):
        result = analyze_source(
            "import numpy as np\n"
            "import numpy.typing as npt\n"
            "def store(a: npt.NDArray[np.int64]):\n"
            "    return a.astype(np.int32)\n",
            filename=RP014_ARENA_FILE,
            select=["RP014"],
        )
        assert codes(result) == ["RP014"]
        assert "int32_fits" in result.active[0].message

    def test_fit_guarded_narrowing_is_sanctioned(self):
        result = analyze_source(
            RP014_GUARDED_NARROWING, filename=RP014_ARENA_FILE, select=["RP014"]
        )
        assert codes(result) == []

    def test_storage_dtype_call_counts_as_guard(self):
        result = analyze_source(
            "import numpy as np\n"
            "from repro.core.arena import storage_dtype\n"
            "def allocate(m: int, n: int):\n"
            "    return np.zeros((m, n), dtype=storage_dtype(n))\n",
            filename=RP014_ARENA_FILE,
            select=["RP014"],
        )
        assert codes(result) == []

    def test_guarded_narrow_reduction_still_flags_accumulator(self):
        result = analyze_source(
            RP014_GUARDED_REDUCTION, filename=RP014_ARENA_FILE, select=["RP014"]
        )
        assert codes(result) == ["RP014"]
        assert "default-accumulator" in result.active[0].message
        assert "accumulators stay int64" in result.active[0].message

    def test_guarded_reduction_with_int64_accumulator_is_clean(self):
        text = RP014_GUARDED_REDUCTION.replace(
            "narrow.sum()", "narrow.sum(dtype=np.int64)"
        ).replace("return a.sum()", "return a.sum(dtype=np.int64)")
        assert codes(analyze_source(text, filename=RP014_ARENA_FILE, select=["RP014"])) == []

    def test_storage_dtype_result_demands_explicit_accumulator(self):
        # arrays allocated via storage_dtype(n) may be int32: summing
        # them without dtype= is the overflow hazard the rule exists for
        result = analyze_source(
            "import numpy as np\n"
            "from repro.core.arena import storage_dtype\n"
            "def total(m: int, n: int):\n"
            "    rows = np.zeros((m, n), dtype=storage_dtype(n))\n"
            "    return rows.sum()\n",
            filename=RP014_ARENA_FILE,
            select=["RP014"],
        )
        assert codes(result) == ["RP014"]
        assert "default-accumulator" in result.active[0].message

    def test_noqa_suppresses_guarded_reduction(self):
        text = RP014_GUARDED_REDUCTION.replace(
            "        return narrow.sum()\n",
            "        return narrow.sum()  # repro: noqa[RP014] — test fixture\n",
        )
        assert codes(analyze_source(text, filename=RP014_ARENA_FILE, select=["RP014"])) == []


RP015_FLAGGING = (
    "import os\n"
    "def limit():\n"
    "    return os.environ.get('REPRO_LIMIT', '')\n"
)


class TestRP015EnvHygiene:
    def test_flagging_unsanctioned_read(self):
        result = analyze_source(
            RP015_FLAGGING, filename="src/repro/fxp/cfg.py", select=["RP015"]
        )
        assert codes(result) == ["RP015"]
        assert "REPRO_LIMIT" in result.active[0].message

    def test_clean_in_sanctioned_module(self):
        result = analyze_source(
            RP015_FLAGGING, filename="src/repro/parallel.py", select=["RP015"]
        )
        assert codes(result) == []

    def test_noqa_suppresses(self):
        text = RP015_FLAGGING.replace(
            "    return os.environ.get('REPRO_LIMIT', '')\n",
            "    return os.environ.get('REPRO_LIMIT', '')  # repro: noqa[RP015]\n",
        )
        result = analyze_source(
            text, filename="src/repro/fxp/cfg.py", select=["RP015"]
        )
        assert codes(result) == []


RP016_FILE = "src/repro/aggregate/fake.py"

RP016_FLAGGING = (
    "class Agg:\n"
    "    def __init__(self):\n"
    "        self._items = []\n"
    "    def add(self, item):\n"
    "        self._items.append(item)\n"
    "        if item is None:\n"
    "            raise ValueError('bad item')\n"
)


class TestRP016ValidateBeforeMutate:
    def test_flagging_raise_after_write(self):
        result = analyze_source(RP016_FLAGGING, filename=RP016_FILE, select=["RP016"])
        assert codes(result) == ["RP016"]
        assert "half-mutated" in result.active[0].message

    def test_clean_validate_then_mutate(self):
        result = analyze_source(
            "class Agg:\n"
            "    def __init__(self):\n"
            "        self._items = []\n"
            "    def add(self, item):\n"
            "        if item is None:\n"
            "            raise ValueError('bad item')\n"
            "        self._items.append(item)\n",
            filename=RP016_FILE,
            select=["RP016"],
        )
        assert codes(result) == []

    def test_noqa_suppresses(self):
        text = RP016_FLAGGING.replace(
            "            raise ValueError('bad item')\n",
            "            raise ValueError('bad item')  # repro: noqa[RP016]\n",
        )
        assert codes(analyze_source(text, filename=RP016_FILE, select=["RP016"])) == []

    def test_raising_helper_after_write_is_flagged(self):
        result = analyze_source(
            "class Agg:\n"
            "    def __init__(self):\n"
            "        self._items = []\n"
            "    def _check(self, item):\n"
            "        if item is None:\n"
            "            raise ValueError('bad item')\n"
            "    def add(self, item):\n"
            "        self._items.append(item)\n"
            "        self._check(item)\n",
            filename=RP016_FILE,
            select=["RP016"],
        )
        assert codes(result) == ["RP016"]
        assert "_check" in result.active[0].message

    def test_outside_stateful_modules_not_checked(self):
        result = analyze_source(
            RP016_FLAGGING, filename="src/repro/fxp/free.py", select=["RP016"]
        )
        assert codes(result) == []


class TestBaseline:
    def _result(self):
        return analyze_source(
            "def f(x, acc=[]):\n    return acc\n",
            filename="src/repro/fxp/bad.py",
            select=["RP005"],
        )

    def test_matching_entry_gates_finding(self, tmp_path):
        result = self._result()
        (finding,) = result.active
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {
                    "schema": "repro.analysis/baseline-1",
                    "entries": [
                        {
                            "rule": finding.rule,
                            "path": finding.path,
                            "message": finding.message,
                            "reason": "legacy fixture kept on purpose",
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        baseline = Baseline.load(baseline_path)
        gated = apply_baseline(result, baseline)
        assert gated.active == []
        assert gated.findings[0].baselined
        assert gated.exit_code() == 0
        assert baseline.stale_entries(gated) == []

    def test_empty_reason_rejected(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {
                    "schema": "repro.analysis/baseline-1",
                    "entries": [
                        {"rule": "RP005", "path": "x.py", "message": "m", "reason": " "}
                    ],
                }
            ),
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="no reason"):
            Baseline.load(baseline_path)

    def test_stale_entries_detected(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {
                    "schema": "repro.analysis/baseline-1",
                    "entries": [
                        {
                            "rule": "RP005",
                            "path": "gone.py",
                            "message": "never matches",
                            "reason": "obsolete",
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        baseline = Baseline.load(baseline_path)
        assert len(baseline.stale_entries(self._result())) == 1

    def test_write_baseline_round_trips(self, tmp_path):
        result = self._result()
        out = tmp_path / "generated.json"
        count = write_baseline(result, out)
        assert count == 1
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["entries"][0]["rule"] == "RP005"
        assert "TODO" in payload["entries"][0]["reason"]

    def test_shipped_baseline_has_no_stale_entries(self):
        baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
        result = analyze_paths([SRC], root=REPO_ROOT)
        assert baseline.stale_entries(result) == []
        gated = apply_baseline(result, baseline)
        assert [f for f in gated.active if f.severity >= 2] == []


class TestCache:
    def test_key_changes_with_content_codes_and_version(self):
        files = [("a.py", b"x = 1\n")]
        base = cache_key(files, ("RP001",))
        assert cache_key([("a.py", b"x = 2\n")], ("RP001",)) != base
        assert cache_key(files, ("RP002",)) != base
        assert cache_key(files, ("RP001",), ruleset="other") != base
        assert cache_key(files, ("RP001",)) == base

    def test_store_load_round_trip(self, tmp_path):
        result = analyze_source("def f(x, acc=[]):\n    return acc\n", select=["RP005"])
        key = cache_key([("s.py", b"whatever")], ("RP005",))
        store_cached(tmp_path, key, result)
        loaded = load_cached(tmp_path, key)
        assert loaded is not None
        assert [f.to_dict() for f in loaded.findings] == [
            f.to_dict() for f in result.findings
        ]
        assert load_cached(tmp_path, "0" * 64) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        key = "a" * 64
        (tmp_path / f"{key}.json").write_text("{not json", encoding="utf-8")
        assert load_cached(tmp_path, key) is None

    def test_warm_run_identical_and_5x_faster(self, tmp_path):
        """Acceptance criterion: warm cached run returns identical
        findings at least 5x faster than the cold run."""
        target = [str(SRC / "repro")]
        started = time.perf_counter()
        cold = _run_with_cache(
            target, root=REPO_ROOT, select=None, jobs=None,
            use_cache=True, cache_dir=tmp_path,
        )
        cold_seconds = time.perf_counter() - started

        started = time.perf_counter()
        warm = _run_with_cache(
            target, root=REPO_ROOT, select=None, jobs=None,
            use_cache=True, cache_dir=tmp_path,
        )
        warm_seconds = time.perf_counter() - started

        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]
        assert warm.files_checked == cold.files_checked
        assert warm_seconds * 5 <= cold_seconds, (cold_seconds, warm_seconds)

    def test_no_cache_leaves_no_entries(self, tmp_path):
        _run_with_cache(
            [str(SRC / "repro" / "errors.py")], root=REPO_ROOT, select=["RP005"],
            jobs=None, use_cache=False, cache_dir=tmp_path,
        )
        assert list(tmp_path.glob("*.json")) == []

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        target = [str(SRC / "repro" / "errors.py")]
        _run_with_cache(
            target, root=REPO_ROOT, select=["RP005"], jobs=None,
            use_cache=True, cache_dir=tmp_path,
        )
        first = set(tmp_path.glob("*.json"))
        assert len(first) == 1
        import repro.analysis.cache as cache_module

        monkeypatch.setattr(cache_module, "RULESET_VERSION", "next-version")
        _run_with_cache(
            target, root=REPO_ROOT, select=["RP005"], jobs=None,
            use_cache=True, cache_dir=tmp_path,
        )
        assert len(set(tmp_path.glob("*.json"))) == 2


class TestParallelAnalysis:
    def test_parallel_findings_match_serial(self):
        paths = [str(SRC / "repro" / "metrics"), str(SRC / "repro" / "parallel.py")]
        serial = analyze_paths(paths, root=REPO_ROOT)
        parallel = analyze_paths(paths, root=REPO_ROOT, jobs=2)
        assert [f.to_dict() for f in parallel.findings] == [
            f.to_dict() for f in serial.findings
        ]
        assert parallel.files_checked == serial.files_checked


class TestSarif:
    def test_sarif_structure_and_suppressions(self):
        result = analyze_source(
            "def f(x, acc=[]):  # repro: noqa[RP005]\n"
            "    return acc\n"
            "def g(x, acc=[]):\n"
            "    return acc\n",
            select=["RP005"],
        )
        payload = json.loads(render_sarif(result))
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        assert any(rule["id"] == "RP005" for rule in run["tool"]["driver"]["rules"])
        results = run["results"]
        assert len(results) == 2
        suppressed = [r for r in results if r.get("suppressions")]
        assert len(suppressed) == 1
        assert suppressed[0]["suppressions"][0]["kind"] == "inSource"
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] >= 1


class TestSelfApplication:
    def test_own_flow_package_is_clean(self):
        result = analyze_paths([SRC / "repro" / "analysis"], root=REPO_ROOT)
        assert [f for f in result.active if f.severity >= 2] == []

    def test_every_flow_rule_catches_its_planted_fixture(self):
        planted = {
            "RP012": (RP012_FLAGGING, "<snippet>"),
            "RP013": (RP013_FLAGGING, "<snippet>"),
            "RP014": (RP014_FLAGGING, RP014_FILE),
            "RP015": (RP015_FLAGGING, "src/repro/fxp/cfg.py"),
            "RP016": (RP016_FLAGGING, RP016_FILE),
        }
        for code, (text, filename) in planted.items():
            result = analyze_source(text, filename=filename, select=[code])
            assert codes(result) == [code], code


class TestRP015ServeCoverage:
    """PR 8: only repro.serve.config may read REPRO_SERVE_* variables."""

    _PLANTED = (
        "import os\n"
        "def window():\n"
        "    return os.environ.get('REPRO_SERVE_BATCH_WINDOW', '')\n"
    )

    def test_env_read_in_non_config_serve_module_flagged(self):
        result = analyze_source(
            self._PLANTED, filename="src/repro/serve/batching.py", select=["RP015"]
        )
        assert codes(result) == ["RP015"]
        assert "REPRO_SERVE_BATCH_WINDOW" in result.active[0].message

    def test_env_read_in_serve_config_sanctioned(self):
        result = analyze_source(
            self._PLANTED, filename="src/repro/serve/config.py", select=["RP015"]
        )
        assert codes(result) == []

    def test_shipped_serve_config_is_the_only_env_reader(self):
        """Grep-level check on the real package: os.environ appears only
        in config.py (the RP015-sanctioned module)."""
        offenders = []
        for path in sorted((SRC / "repro" / "serve").glob("*.py")):
            if "os.environ" in path.read_text(encoding="utf-8") and path.name != "config.py":
                offenders.append(path.name)
        assert offenders == []
