"""Tests for aggregation objectives and profile validation."""

from __future__ import annotations

import pytest

from repro.aggregate.objective import (
    METRICS,
    total_distance,
    total_l1_to_function,
    validate_profile,
)
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.metrics.footrule import footrule


class TestValidateProfile:
    def test_returns_common_domain(self):
        rankings = [PartialRanking([["a", "b"]]), PartialRanking([["b"], ["a"]])]
        assert validate_profile(rankings) == {"a", "b"}

    def test_empty_profile_rejected(self):
        with pytest.raises(AggregationError):
            validate_profile([])

    def test_mismatched_domains_rejected(self):
        with pytest.raises(AggregationError):
            validate_profile([PartialRanking([["a"]]), PartialRanking([["b"]])])


class TestTotalDistance:
    def test_registry_covers_all_four_metrics(self):
        assert set(METRICS) == {"k_prof", "f_prof", "k_haus", "f_haus"}

    def test_named_metric(self):
        sigma = PartialRanking.from_sequence("ab")
        tau = PartialRanking.from_sequence("ba")
        assert total_distance(sigma, [sigma, tau], "f_prof") == footrule(sigma, tau)

    def test_callable_metric(self):
        sigma = PartialRanking.from_sequence("ab")
        assert total_distance(sigma, [sigma], lambda a, b: 7.0) == 7.0

    def test_unknown_metric_rejected(self):
        sigma = PartialRanking.from_sequence("ab")
        with pytest.raises(AggregationError):
            total_distance(sigma, [sigma], "nope")

    def test_candidate_domain_mismatch_rejected(self):
        sigma = PartialRanking.from_sequence("ab")
        other = PartialRanking.from_sequence("xy")
        with pytest.raises(AggregationError):
            total_distance(other, [sigma])

    def test_every_registered_metric_runs(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        tau = PartialRanking([["c"], ["a", "b"]])
        for name in METRICS:
            value = total_distance(sigma, [tau, tau], name)
            assert value >= 0


class TestTotalL1ToFunction:
    def test_matches_manual_sum(self):
        sigma = PartialRanking.from_sequence("ab")  # a: 1, b: 2
        tau = PartialRanking.from_sequence("ba")  # a: 2, b: 1
        f = {"a": 1.0, "b": 1.0}
        assert total_l1_to_function(f, [sigma, tau]) == (0 + 1) + (1 + 0)

    def test_function_domain_mismatch_rejected(self):
        sigma = PartialRanking.from_sequence("ab")
        with pytest.raises(AggregationError):
            total_l1_to_function({"a": 1.0}, [sigma])
