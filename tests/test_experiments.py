"""Integration tests: every experiment runs and its headline claim holds.

Each test invokes the experiment runner with small parameters, then
asserts the *shape* the paper proves — these are the executable versions
of the EXPERIMENTS.md expectations.
"""

from __future__ import annotations

import pytest

from repro.experiments import all_experiments, format_table, format_tables, get_experiment
from repro.experiments import (
    e01_penalty,
    e13_related_measures,
    e14_exact_kemeny,
    e15_condorcet_structure,
    e16_robustness,
    e02_hausdorff,
    e03_equivalence,
    e04_diaconis_graham,
    e05_topk_aggregation,
    e06_dp_bucketing,
    e07_full_ranking,
    e08_medrank_access,
    e09_aggregator_comparison,
    e10_scaling,
    e11_strong_optimality,
    e12_topk_location,
)
from repro.experiments.runner import Table


class TestRegistry:
    def test_all_seventeen_registered(self):
        assert sorted(all_experiments()) == [f"e{i:02d}" for i in range(1, 18)]

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("e99")

    def test_descriptions_present(self):
        for _, description in all_experiments().values():
            assert description


class TestCommandLine:
    def test_lists_when_no_experiment_given(self, capsys):
        from repro.experiments.__main__ import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "available experiments" in out and "e15" in out

    def test_runs_a_single_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["e04", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Diaconis" in out and "adjacent transposition" in out


class TestTableFormatting:
    def test_format_renders_all_columns(self):
        table = Table(
            title="demo", columns=("a", "b"), rows=({"a": 1, "b": 2.5},), notes="n"
        )
        rendered = format_table(table)
        assert "demo" in rendered and "2.5" in rendered and "note: n" in rendered

    def test_column_extraction(self):
        table = Table(title="t", columns=("x",), rows=({"x": 3}, {"x": 4}))
        assert table.column("x") == [3, 4]
        with pytest.raises(KeyError):
            table.column("y")

    def test_format_tables_joins(self):
        table = Table(title="t", columns=("x",), rows=({"x": 1},))
        assert format_tables([table, table]).count("t\n-") == 2


class TestE01:
    def test_regimes_match_proposition_13(self):
        counterexample, sweep = e01_penalty.run(seed=0, n=6, samples=10)
        by_p = {row["p"]: row for row in counterexample.rows}
        assert not by_p[0.0]["regular"]
        assert not by_p[0.25]["triangle_holds"]
        assert by_p[0.5]["triangle_holds"]
        assert by_p[1.0]["triangle_holds"]
        for row in sweep.rows:
            if row["p"] >= 0.5:
                assert row["triangle_violations"] == 0
                assert row["regularity_violations"] == 0
            if 0 < row["p"] < 0.5:
                assert row["worst_triangle_ratio"] <= row["bound_1_over_2p"] + 1e-9


class TestE02:
    def test_characterizations_are_exact(self):
        exhaustive, randomized = e02_hausdorff.run(
            seed=0, exhaustive_n=3, random_n=5, samples=10
        )
        row = exhaustive.rows[0]
        assert row["K_Haus_thm5_ok"] == row["pairs"]
        assert row["F_Haus_thm5_ok"] == row["pairs"]
        assert row["K_Haus_prop6_ok"] == row["pairs"]
        random_row = randomized.rows[0]
        assert random_row["K_Haus_ok"] == random_row["samples"]
        assert random_row["F_Haus_ok"] == random_row["samples"]


class TestE03:
    def test_all_ratios_within_proved_constants(self):
        for table in e03_equivalence.run(seed=0, n=12, samples=15):
            for row in table.rows:
                assert row["within_bounds"]
                assert 1.0 - 1e-9 <= row["min_ratio"]
                assert row["max_ratio"] <= row["proved_max"] + 1e-9


class TestE04:
    def test_ratios_in_one_to_two(self):
        random_table, structured = e04_diaconis_graham.run(seed=0, n=20, samples=40)
        row = random_table.rows[0]
        assert 1.0 - 1e-9 <= row["min_ratio"] and row["max_ratio"] <= 2.0 + 1e-9
        families = {r["family"]: r for r in structured.rows}
        assert families["adjacent transposition"]["F_over_K"] == 2.0


class TestE05:
    def test_median_within_factor_three(self):
        (table,) = e05_topk_aggregation.run(seed=0, n=5, k=2, m=3, trials=8)
        by_name = {row["aggregator"]: row for row in table.rows}
        assert by_name["median"]["max_ratio"] <= 3.0 + 1e-9


class TestE06:
    def test_dp_exact_and_aggregation_factor_two(self):
        dp_table, agg_table = e06_dp_bucketing.run(
            seed=0, dp_trials=15, dp_max_n=8, n=4, m=3, agg_trials=6
        )
        row = dp_table.rows[0]
        assert row["dp_matches_bruteforce"] == row["trials"]
        assert row["figure1_matches_bruteforce"] == row["trials"]
        assert agg_table.rows[0]["max_ratio"] <= 2.0 + 1e-9


class TestE07:
    def test_median_within_factor_two(self):
        (table,) = e07_full_ranking.run(seed=0, sizes=(8,), m=5, trials=4)
        for row in table.rows:
            assert row["median_max"] <= 2.0 + 1e-9


class TestE08:
    def test_access_is_sublinear_on_correlated_inputs(self):
        (table,) = e08_medrank_access.run(seed=0, n=80, m=4, k=2)
        by_workload = {row["workload"]: row for row in table.rows}
        correlated = next(
            row for name, row in by_workload.items() if "phi=0.2" in name
        )
        assert correlated["medrank_saturation"] < 0.5
        for row in table.rows:
            assert row["nra_winner_gap"] == pytest.approx(0.0)


class TestE09:
    def test_median_competitive_with_optimum(self):
        (table,) = e09_aggregator_comparison.run(seed=0, n=25, m=5)
        medians = [
            row for row in table.rows if row["aggregator"] == "median (full)"
        ]
        assert medians
        for row in medians:
            # Corollary 30 ceiling (inputs here are partial rankings, so the
            # stronger Theorem 11 factor 2 is not guaranteed)
            assert row["f_prof_ratio"] <= 3.0 + 1e-9


class TestE10:
    def test_fast_beats_naive(self):
        (table,) = e10_scaling.run(seed=0, sizes=(100, 200))
        for row in table.rows:
            assert row["kendall_fast_s"] > 0
            if row["kendall_naive_s"] == row["kendall_naive_s"]:  # not NaN
                assert row["kendall_naive_s"] >= row["kendall_fast_s"]


class TestE11:
    def test_within_both_ceilings(self):
        (table,) = e11_strong_optimality.run(seed=0, n=4, k=2, m=3, trials=6)
        for row in table.rows:
            assert row["within_both"]
            assert row["c (f-dagger ratio)"] <= 2.0 + 1e-9


class TestE13:
    def test_gamma_undefined_on_degenerate_workload(self):
        (table,) = e13_related_measures.run(seed=0, n=20, m=8)
        degenerate = [
            row for row in table.rows if row["workload"] == "constant attribute"
        ]
        assert degenerate
        assert all(row["undefined"] > 0 for row in degenerate)

    def test_tau_b_agrees_with_k_prof_where_defined(self):
        (table,) = e13_related_measures.run(seed=0, n=20, m=8)
        tau_b_rows = [
            row
            for row in table.rows
            if row["measure"] == "tau_b" and row["workload"] != "constant attribute"
        ]
        assert all(row["agreement_with_k_prof"] > 0.8 for row in tau_b_rows)


class TestE14:
    def test_median_near_exact_kemeny(self):
        table, banded = e14_exact_kemeny.run(
            seed=0, sizes=(6, 9), m=5, trials=4, banded_sizes=(40,)
        )
        for row in table.rows:
            assert row["median_max"] <= 6.0  # transferred constant
            assert row["optimum_over_lower_bound"] >= 1.0 - 1e-9
        for row in banded.rows:
            # every banded component fits the DP cap -> always certified
            assert row["certified_exact_rate"] == 1.0
            assert row["component_histogram"]


class TestE15:
    def test_acyclic_instances_match_exact_optimum(self):
        (table,) = e15_condorcet_structure.run(seed=0, n=6, trials=10)
        for row in table.rows:
            fraction = row["topo_equals_exact"]
            if fraction != "-":
                matched, total = fraction.split("/")
                assert matched == total


class TestE16:
    def test_median_more_robust_than_borda_below_breakdown(self):
        (table,) = e16_robustness.run(seed=0, n=15, honest=8, trials=5)
        contested = [
            row
            for row in table.rows
            if 0.1 <= row["adversarial_fraction"] < 0.45
        ]
        assert contested
        # averaged over the contested region, median beats Borda
        mean_median = sum(r["median_error"] for r in contested) / len(contested)
        mean_borda = sum(r["borda_error"] for r in contested) / len(contested)
        assert mean_median <= mean_borda + 1e-9


class TestE12:
    def test_identity_holds_everywhere(self):
        identity, sweep, fks = e12_topk_location.run(seed=0, n=20, k=4, samples=15)
        fks_row = fks.rows[0]
        assert fks_row["triangle_violations"] > 0
        assert fks_row["worst_ratio"] <= 2.0 + 1e-9
        row = identity.rows[0]
        assert row["exact_matches"] == row["samples"]
        canonical = (20 + 4 + 1) / 2
        canonical_rows = [r for r in sweep.rows if r["ell"] == canonical]
        assert canonical_rows and canonical_rows[0]["max_ratio"] == pytest.approx(1.0)
