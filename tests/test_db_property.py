"""Property-based fuzzing of the database substrate.

Random relations (random schemas, value cardinalities, sizes) are pushed
through the select / project / rank pipeline, and the structural
invariants every stage must preserve are asserted.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.relation import Relation

_ATTRIBUTE_NAMES = ("color", "size", "grade", "region", "score")


@st.composite
def relations(draw) -> Relation:
    num_rows = draw(st.integers(min_value=1, max_value=25))
    num_attributes = draw(st.integers(min_value=1, max_value=4))
    attributes = list(_ATTRIBUTE_NAMES[:num_attributes])
    # few-valued columns: the paper's tie drivers
    cardinalities = {
        attribute: draw(st.integers(min_value=1, max_value=4))
        for attribute in attributes
    }
    rows = []
    for index in range(num_rows):
        row = {"id": index}
        for attribute in attributes:
            row[attribute] = draw(
                st.integers(min_value=0, max_value=cardinalities[attribute] - 1)
            )
        rows.append(row)
    return Relation.from_rows("fuzz", "id", rows)


class TestRankByInvariants:
    @settings(max_examples=60, deadline=None)
    @given(relations(), st.booleans())
    def test_rank_by_partitions_the_keys(self, relation, reverse):
        for attribute in sorted(relation.attributes - {"id"}):
            ranking = relation.rank_by(attribute, reverse=reverse)
            assert ranking.domain == relation.keys
            assert sum(ranking.type) == len(relation)
            # one bucket per distinct value
            assert len(ranking.buckets) == relation.distinct_values(attribute)

    @settings(max_examples=60, deadline=None)
    @given(relations())
    def test_rank_by_orders_by_value(self, relation):
        for attribute in sorted(relation.attributes - {"id"}):
            ranking = relation.rank_by(attribute)
            column = relation.column(attribute)
            for x in relation.keys:
                for y in relation.keys:
                    if column[x] < column[y]:
                        assert ranking.ahead(x, y)
                    elif column[x] == column[y]:
                        assert ranking.tied(x, y)

    @settings(max_examples=60, deadline=None)
    @given(relations())
    def test_reverse_flips_strict_order(self, relation):
        for attribute in sorted(relation.attributes - {"id"}):
            forward = relation.rank_by(attribute)
            backward = relation.rank_by(attribute, reverse=True)
            for x in relation.keys:
                for y in relation.keys:
                    if forward.ahead(x, y):
                        assert backward.ahead(y, x)


class TestPipelineInvariants:
    @settings(max_examples=60, deadline=None)
    @given(relations(), st.integers(min_value=0, max_value=3))
    def test_where_commutes_with_rank_restriction(self, relation, threshold):
        """Filtering then ranking equals ranking then restricting."""
        attribute = sorted(relation.attributes - {"id"})[0]
        selected_keys = {
            row["id"] for row in relation if row[attribute] <= threshold
        }
        if not selected_keys:
            return
        filtered = relation.where(lambda row: row[attribute] <= threshold)
        direct = filtered.rank_by(attribute)
        restricted = relation.rank_by(attribute).restricted_to(selected_keys)
        assert direct == restricted

    @settings(max_examples=60, deadline=None)
    @given(relations())
    def test_project_preserves_rankings_of_kept_attributes(self, relation):
        attribute = sorted(relation.attributes - {"id"})[0]
        projected = relation.project([attribute])
        assert projected.rank_by(attribute) == relation.rank_by(attribute)

    @settings(max_examples=40, deadline=None)
    @given(relations())
    def test_lex_ranking_refines_primary(self, relation):
        attributes = sorted(relation.attributes - {"id"})
        if len(attributes) < 2:
            return
        lex = relation.rank_by_lex([(attributes[0], False), (attributes[1], False)])
        primary = relation.rank_by(attributes[0])
        assert lex.is_refinement_of(primary)
