"""Tests for baseline aggregators: Borda, MC4, pick-a-perm, local Kemeny."""

from __future__ import annotations

import random

import pytest

from repro.aggregate.baselines import (
    best_input,
    borda,
    locally_kemenize,
    markov_chain_mc4,
    pick_a_perm,
)
from repro.aggregate.objective import total_distance
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.generators.random import random_bucket_order, random_full_ranking, resolve_rng


def _consensus_profile() -> list[PartialRanking]:
    """A profile with a clear majority order a < b < c < d."""
    return [
        PartialRanking.from_sequence("abcd"),
        PartialRanking.from_sequence("abcd"),
        PartialRanking.from_sequence("abdc"),
        PartialRanking.from_sequence("bacd"),
    ]


class TestBorda:
    def test_recovers_consensus(self):
        assert borda(_consensus_profile()).items_in_order() == list("abcd")

    def test_output_is_full(self):
        rng = resolve_rng(1)
        rankings = [random_bucket_order(6, rng) for _ in range(3)]
        assert borda(rankings).is_full

    def test_single_input_refines_it(self):
        sigma = PartialRanking([["b", "a"], ["c"]])
        assert borda([sigma]).is_refinement_of(sigma)


class TestBestInput:
    def test_picks_the_central_ranking(self):
        outlier = PartialRanking.from_sequence("dcba")
        center = PartialRanking.from_sequence("abcd")
        rankings = [center, center, outlier]
        assert best_input(rankings) == center

    def test_two_approximation_property(self):
        # best input is within 2x of any candidate by the triangle inequality
        rng = resolve_rng(13)
        rankings = [random_bucket_order(6, rng) for _ in range(4)]
        chosen_cost = total_distance(best_input(rankings), rankings, "f_prof")
        for candidate in rankings:
            assert chosen_cost <= 2 * total_distance(candidate, rankings, "f_prof") + 1e-9

    def test_custom_metric_callable(self):
        from repro.metrics.kendall import kendall

        rankings = _consensus_profile()
        assert best_input(rankings, kendall) in rankings


class TestPickAPerm:
    def test_output_is_full_refinement_of_an_input(self):
        rng = resolve_rng(2)
        rankings = [random_bucket_order(6, rng) for _ in range(4)]
        result = pick_a_perm(rankings, random.Random(0))
        assert result.is_full
        assert any(result.is_refinement_of(sigma) for sigma in rankings)

    def test_deterministic_under_seed(self):
        rankings = _consensus_profile()
        assert pick_a_perm(rankings, random.Random(5)) == pick_a_perm(
            rankings, random.Random(5)
        )


class TestMC4:
    def test_recovers_consensus(self):
        result = markov_chain_mc4(_consensus_profile())
        assert result.items_in_order() == list("abcd")

    def test_single_item_domain(self):
        assert markov_chain_mc4([PartialRanking([["only"]])]).domain == {"only"}

    def test_bad_damping_rejected(self):
        with pytest.raises(AggregationError):
            markov_chain_mc4(_consensus_profile(), damping=1.0)

    def test_handles_ties_in_inputs(self):
        rankings = [
            PartialRanking([["a", "b"], ["c"]]),
            PartialRanking([["a"], ["b", "c"]]),
            PartialRanking([["a"], ["b"], ["c"]]),
        ]
        result = markov_chain_mc4(rankings)
        assert result.ahead("a", "c")


class TestLocalKemenization:
    def test_never_increases_kendall_objective(self):
        rng = resolve_rng(7)
        for _ in range(10):
            rankings = [random_full_ranking(7, rng) for _ in range(5)]
            start = random_full_ranking(7, rng)
            improved = locally_kemenize(start, rankings)
            assert total_distance(improved, rankings, "k_prof") <= total_distance(
                start, rankings, "k_prof"
            ) + 1e-9

    def test_local_optimum_has_no_improving_adjacent_swap(self):
        rng = resolve_rng(19)
        rankings = [random_full_ranking(6, rng) for _ in range(5)]
        result = locally_kemenize(random_full_ranking(6, rng), rankings, max_passes=500)
        order = result.items_in_order()
        base = total_distance(result, rankings, "k_prof")
        for i in range(len(order) - 1):
            swapped = list(order)
            swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
            candidate = PartialRanking.from_sequence(swapped)
            assert total_distance(candidate, rankings, "k_prof") >= base - 1e-9

    def test_partial_candidate_rejected(self):
        rankings = _consensus_profile()
        with pytest.raises(AggregationError):
            locally_kemenize(PartialRanking([["a", "b"], ["c", "d"]]), rankings)
