"""The process-pool plumbing: jobs resolution and order-preserving maps."""

from __future__ import annotations

import os

import pytest

from repro.parallel import ENV_JOBS, parallel_map, resolve_jobs


def _square(x: int) -> int:
    return x * x


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_JOBS, raising=False)
        assert resolve_jobs() == 1
        assert resolve_jobs(None) == 1

    def test_explicit_value_wins(self):
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "4")
        assert resolve_jobs() == 4

    def test_malformed_env_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "many")
        assert resolve_jobs() == 1

    def test_negative_means_all_cpus(self):
        assert resolve_jobs(-1) == (os.cpu_count() or 1)

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="jobs=0"):
            resolve_jobs(0)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_input(self):
        assert parallel_map(_square, []) == []

    def test_pool_preserves_input_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=2) == [x * x for x in items]

    def test_pool_matches_serial(self):
        items = list(range(8))
        assert parallel_map(_square, items, jobs=2) == parallel_map(_square, items)

    def test_generator_input(self):
        assert parallel_map(_square, (x for x in (2, 3))) == [4, 9]


class TestRunExperiments:
    def test_pool_matches_serial(self):
        from repro.experiments.runner import format_tables, run_experiments

        serial = run_experiments(["e04"], seed=0)
        pooled = run_experiments(["e04"], seed=0, jobs=2)
        assert list(serial) == ["e04"] == list(pooled)
        assert format_tables(serial["e04"]) == format_tables(pooled["e04"])

    def test_unknown_id_rejected_before_running(self):
        from repro.experiments.runner import run_experiments

        with pytest.raises(KeyError, match="e99"):
            run_experiments(["e99"])
