"""The process-pool plumbing: jobs resolution and order-preserving maps."""

from __future__ import annotations

import os
import warnings

import pytest

import repro.parallel
from repro.parallel import ENV_JOBS, parallel_map, resolve_jobs


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"worker exploded on {x}")


class TestResolveJobs:
    @pytest.fixture(autouse=True)
    def _fresh_jobs_cache(self):
        # resolve_jobs memoizes per raw env value; tests monkeypatch the
        # environment, so start each one from an empty cache.
        repro.parallel._reset_jobs_cache()
        yield
        repro.parallel._reset_jobs_cache()

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_JOBS, raising=False)
        assert resolve_jobs() == 1
        assert resolve_jobs(None) == 1

    def test_explicit_value_wins(self):
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "4")
        assert resolve_jobs() == 4

    def test_malformed_env_warns_and_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "many")
        with pytest.warns(RuntimeWarning, match=r"REPRO_JOBS='many'"):
            assert resolve_jobs() == 1

    def test_malformed_env_warns_only_once_per_process(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "many")
        with pytest.warns(RuntimeWarning, match=r"REPRO_JOBS='many'"):
            assert resolve_jobs() == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for _ in range(10):  # every later call site hits the cache
                assert resolve_jobs() == 1

    def test_changed_env_value_is_reparsed(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "3")
        assert resolve_jobs() == 3
        monkeypatch.setenv(ENV_JOBS, "5")
        assert resolve_jobs() == 5
        monkeypatch.setenv(ENV_JOBS, "bogus")
        with pytest.warns(RuntimeWarning, match=r"REPRO_JOBS='bogus'"):
            assert resolve_jobs() == 1
        monkeypatch.setenv(ENV_JOBS, "3")  # earlier good value still cached
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_jobs() == 3

    def test_well_formed_env_does_not_warn(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "2")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_jobs() == 2

    def test_unset_env_does_not_warn(self, monkeypatch):
        monkeypatch.delenv(ENV_JOBS, raising=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_jobs() == 1

    def test_negative_means_all_cpus(self):
        assert resolve_jobs(-1) == (os.cpu_count() or 1)

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="jobs=0"):
            resolve_jobs(0)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_input(self):
        assert parallel_map(_square, []) == []

    def test_pool_preserves_input_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=2) == [x * x for x in items]

    def test_pool_matches_serial(self):
        items = list(range(8))
        assert parallel_map(_square, items, jobs=2) == parallel_map(_square, items)

    def test_generator_input(self):
        assert parallel_map(_square, (x for x in (2, 3))) == [4, 9]

    def test_generator_materialized_once(self):
        yielded: list[int] = []

        def produce():
            for x in range(6):
                yielded.append(x)
                yield x

        assert parallel_map(_square, produce(), jobs=2) == [x * x for x in range(6)]
        assert yielded == list(range(6))  # consumed exactly once, fully

    def test_empty_input_creates_no_pool(self, monkeypatch):
        def forbidden_pool(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor created for empty input")

        monkeypatch.setattr(
            repro.parallel, "ProcessPoolExecutor", forbidden_pool
        )
        assert parallel_map(_square, [], jobs=8) == []

    def test_serial_path_creates_no_pool(self, monkeypatch):
        def forbidden_pool(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor created on the serial path")

        monkeypatch.setattr(
            repro.parallel, "ProcessPoolExecutor", forbidden_pool
        )
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_worker_exception_propagates_with_context(self):
        with pytest.raises(ValueError, match="worker exploded on") as excinfo:
            parallel_map(_boom, [1, 2, 3, 4], jobs=2)
        # the pool re-raises with the remote traceback attached as the
        # exception's cause, so the original worker frame stays visible
        assert excinfo.value.__cause__ is not None
        assert "_boom" in str(excinfo.value.__cause__)

    def test_worker_exception_serial_has_direct_traceback(self):
        with pytest.raises(ValueError, match="worker exploded on 1"):
            parallel_map(_boom, [1, 2, 3])


class TestRunExperiments:
    def test_pool_matches_serial(self):
        from repro.experiments.runner import format_tables, run_experiments

        serial = run_experiments(["e04"], seed=0)
        pooled = run_experiments(["e04"], seed=0, jobs=2)
        assert list(serial) == ["e04"] == list(pooled)
        assert format_tables(serial["e04"]) == format_tables(pooled["e04"])

    def test_unknown_id_rejected_before_running(self):
        from repro.experiments.runner import run_experiments

        with pytest.raises(KeyError, match="e99"):
            run_experiments(["e99"])
