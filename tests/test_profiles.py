"""Tests for explicit profile vectors and their metric identities (§3.1)."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.partial_ranking import PartialRanking
from repro.errors import DomainMismatchError
from repro.metrics.footrule import footrule
from repro.metrics.kendall import kendall
from repro.metrics.profiles import f_profile, f_profile_l1, k_profile, k_profile_l1
from tests.conftest import bucket_order_pairs, bucket_orders


class TestKProfile:
    def test_entries(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        profile = k_profile(sigma)
        assert profile[("a", "b")] == 0.0
        assert profile[("a", "c")] == 0.25
        assert profile[("c", "a")] == -0.25

    def test_antisymmetric(self):
        sigma = PartialRanking([["a"], ["b", "c"]])
        profile = k_profile(sigma)
        for (i, j), value in profile.items():
            assert profile[(j, i)] == -value

    @given(bucket_orders(max_size=5))
    def test_size_is_ordered_pairs(self, sigma):
        n = len(sigma)
        assert len(k_profile(sigma)) == n * (n - 1)


class TestFProfile:
    def test_equals_positions(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        assert f_profile(sigma) == {"a": 1.5, "b": 1.5, "c": 3.0}


class TestProfileMetricIdentities:
    """The paper's definition: K_prof / F_prof ARE the profile L1 distances."""

    @given(bucket_order_pairs())
    def test_k_profile_l1_equals_kendall_half(self, pair):
        sigma, tau = pair
        assert k_profile_l1(sigma, tau) == pytest.approx(kendall(sigma, tau, 0.5))

    @given(bucket_order_pairs())
    def test_f_profile_l1_equals_footrule(self, pair):
        sigma, tau = pair
        assert f_profile_l1(sigma, tau) == pytest.approx(footrule(sigma, tau))

    def test_domain_mismatch_rejected(self):
        with pytest.raises(DomainMismatchError):
            k_profile_l1(PartialRanking([["a"]]), PartialRanking([["b"]]))
        with pytest.raises(DomainMismatchError):
            f_profile_l1(PartialRanking([["a"]]), PartialRanking([["b"]]))
