"""Smoke tests: every example script runs end to end and prints output.

Examples are part of the public deliverable; this keeps them from rotting
as the library evolves. Each is executed in-process via ``runpy`` with
stdout captured.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))

EXPECTED_SNIPPETS = {
    "quickstart.py": "Median aggregation",
    "restaurant_search.py": "top-5 restaurants",
    "flight_metasearch.py": "matching optimum",
    "metric_tour.py": "proved bound: 2",
    "instance_optimal_access.py": "medrank depth",
    "skating_judges.py": "gold",
    "similarity_search.py": "most similar restaurants",
    "interactive_search.py": "final performance tiers",
}


def test_every_example_has_an_expectation():
    assert {path.name for path in EXAMPLE_SCRIPTS} == set(EXPECTED_SNIPPETS)


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script: Path, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert EXPECTED_SNIPPETS[script.name] in out
    assert len(out) > 200  # real output, not a silent no-op
