"""Tests for the exact matching-based footrule aggregation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregate.exact import optimal_full_ranking
from repro.aggregate.matching import optimal_footrule_aggregation
from repro.aggregate.objective import total_distance
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.generators.random import random_bucket_order, resolve_rng


class TestOptimalFootruleAggregation:
    def test_reported_cost_matches_objective(self):
        rng = resolve_rng(3)
        rankings = [random_bucket_order(8, rng) for _ in range(4)]
        result, cost = optimal_footrule_aggregation(rankings)
        assert result.is_full
        assert total_distance(result, rankings, "f_prof") == pytest.approx(cost)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_bruteforce_optimum(self, seed):
        rng = resolve_rng(seed)
        rankings = [random_bucket_order(5, rng) for _ in range(3)]
        _, matching_cost = optimal_footrule_aggregation(rankings)
        _, brute_cost = optimal_full_ranking(rankings, metric="f_prof")
        assert matching_cost == pytest.approx(brute_cost)

    def test_unanimous_full_inputs_reproduced(self):
        sigma = PartialRanking.from_sequence("cadb")
        result, cost = optimal_footrule_aggregation([sigma, sigma])
        assert result == sigma
        assert cost == 0.0

    def test_empty_profile_rejected(self):
        with pytest.raises(AggregationError):
            optimal_footrule_aggregation([])

    def test_beats_or_ties_every_input_refinement(self):
        rng = resolve_rng(77)
        rankings = [random_bucket_order(7, rng) for _ in range(5)]
        _, cost = optimal_footrule_aggregation(rankings)
        from repro.aggregate.baselines import borda

        assert cost <= total_distance(borda(rankings), rankings, "f_prof") + 1e-9
