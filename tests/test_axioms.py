"""Tests for the axiom checkers and Proposition 13's regimes."""

from __future__ import annotations

import pytest

from repro.core.partial_ranking import PartialRanking
from repro.generators.random import random_bucket_order, resolve_rng
from repro.metrics.axioms import (
    check_axioms,
    check_distance_measure,
    check_triangle_inequality,
    paper_counterexample_rankings,
)
from repro.metrics.footrule import footrule, footrule_full
from repro.metrics.hausdorff import (
    footrule_hausdorff,
    kendall_hausdorff,
    kendall_hausdorff_counts,
)
from repro.metrics.kendall import kendall, kendall_full
from repro.metrics.normalized import (
    normalized_footrule,
    normalized_footrule_hausdorff,
    normalized_kendall,
    normalized_kendall_hausdorff,
)


def _sample_rankings(n: int = 6, count: int = 12, seed: int = 7):
    rng = resolve_rng(seed)
    rankings = [random_bucket_order(n, rng, tie_bias=0.5) for _ in range(count)]
    # include degenerate corners
    rankings.append(PartialRanking.single_bucket(range(n)))
    rankings.append(PartialRanking.from_sequence(range(n)))
    return rankings


class TestPaperCounterexample:
    def test_k0_is_not_a_distance_measure(self):
        tau_1, tau_2, tau_3 = paper_counterexample_rankings()
        d = lambda x, y: kendall(x, y, 0.0)  # noqa: E731
        assert d(tau_1, tau_2) == 0.0 and tau_1 != tau_2
        assert d(tau_1, tau_3) == 1.0
        violations = check_distance_measure(d, [tau_1, tau_2, tau_3])
        assert any(v.axiom == "regularity" for v in violations)

    def test_triangle_fails_below_half(self):
        rankings = list(paper_counterexample_rankings())
        for p in (0.1, 0.25, 0.4):
            violations = check_triangle_inequality(
                lambda x, y, p=p: kendall(x, y, p), rankings
            )
            assert violations, f"expected a triangle violation at p={p}"

    def test_triangle_holds_at_and_above_half(self):
        rankings = list(paper_counterexample_rankings())
        for p in (0.5, 0.75, 1.0):
            violations = check_triangle_inequality(
                lambda x, y, p=p: kendall(x, y, p), rankings
            )
            assert not violations


class TestFourMetricsAreMetrics:
    @pytest.mark.parametrize(
        "name,metric",
        [
            ("k_prof", kendall),
            ("f_prof", footrule),
            ("k_haus", kendall_hausdorff),
            ("f_haus", footrule_hausdorff),
        ],
    )
    def test_axioms_on_sample(self, name, metric):
        report = check_axioms(metric, _sample_rankings())
        assert report.clean, f"{name}: {[str(v) for v in report.violations]}"
        assert report.checked_pairs > 0
        assert report.is_distance_measure
        assert report.satisfies_triangle


class TestExportedMetricMatrix:
    """Every float/int distance exported by ``repro.metrics`` passes the
    axiom battery on the same sample. This is the axiom half of the matrix
    the RP008 static-analysis rule cross-checks against ``__all__``:
    a metric added to ``repro.metrics.__init__`` must also be added here
    (or to test_equivalence.py) or ``python -m repro.analysis`` fails."""

    VARIANT_METRICS = [
        ("kendall_hausdorff_counts", kendall_hausdorff_counts),
        ("normalized_kendall", normalized_kendall),
        ("normalized_footrule", normalized_footrule),
        ("normalized_kendall_hausdorff", normalized_kendall_hausdorff),
        ("normalized_footrule_hausdorff", normalized_footrule_hausdorff),
    ]

    @pytest.mark.parametrize("name,metric", VARIANT_METRICS)
    def test_axioms_on_sample(self, name, metric):
        report = check_axioms(metric, _sample_rankings(count=8))
        assert report.clean, f"{name}: {[str(v) for v in report.violations]}"
        assert report.is_distance_measure
        assert report.satisfies_triangle

    FULL_RANKING_METRICS = [
        ("kendall_full", kendall_full),
        ("footrule_full", footrule_full),
    ]

    @pytest.mark.parametrize("name,metric", FULL_RANKING_METRICS)
    def test_axioms_on_full_rankings(self, name, metric):
        rng = resolve_rng(11)
        rankings = []
        for _ in range(10):
            items = list(range(6))
            rng.shuffle(items)
            rankings.append(PartialRanking.from_sequence(items))
        report = check_axioms(metric, rankings)
        assert report.clean, f"{name}: {[str(v) for v in report.violations]}"
        assert report.is_distance_measure
        assert report.satisfies_triangle


class TestPolygonalInequality:
    """Definition 1: near metrics satisfy the relaxed polygonal inequality."""

    def test_metric_satisfies_it_at_c_equals_one(self):
        from repro.metrics.axioms import check_polygonal_inequality

        rankings = _sample_rankings(count=10)
        assert check_polygonal_inequality(kendall, rankings, c=1.0, rng=0) == []

    def test_near_metric_kp_violates_at_one_but_not_at_its_constant(self):
        from repro.metrics.axioms import check_polygonal_inequality

        p = 0.25

        def k_p(x, y):
            return kendall(x, y, p)

        counterexample = list(paper_counterexample_rankings())
        at_one = check_polygonal_inequality(
            k_p, counterexample, c=1.0, rng=0, samples=500
        )
        assert at_one, "K^(1/4) should violate the plain polygonal inequality"
        # ... but the relaxed inequality holds at the near-metric constant,
        # on the counterexample family and on random bucket orders alike
        for rankings in (counterexample, _sample_rankings(count=8)):
            at_constant = check_polygonal_inequality(
                k_p, rankings, c=1 / (2 * p), rng=0, samples=500
            )
            assert at_constant == []

    def test_violation_mentions_the_path(self):
        from repro.metrics.axioms import check_polygonal_inequality

        rankings = list(paper_counterexample_rankings())
        violations = check_polygonal_inequality(
            lambda x, y: kendall(x, y, 0.1), rankings, c=1.0, rng=1, samples=300
        )
        assert violations
        assert "hop path" in violations[0].detail


class TestViolationReporting:
    def test_asymmetric_function_reported(self):
        rankings = _sample_rankings(count=4)

        def skewed(x, y):
            return footrule(x, y) + (0.5 if repr(x) < repr(y) else 0.0)

        violations = check_distance_measure(skewed, rankings)
        assert any(v.axiom == "symmetry" for v in violations)

    def test_violation_str_is_informative(self):
        tau_1, tau_2, _ = paper_counterexample_rankings()
        violations = check_distance_measure(
            lambda x, y: kendall(x, y, 0.0), [tau_1, tau_2]
        )
        assert violations
        assert "regularity" in str(violations[0])

    def test_negative_distance_reported(self):
        rankings = _sample_rankings(count=3)
        violations = check_distance_measure(lambda x, y: -1.0, rankings)
        assert any(v.axiom == "non-negativity" for v in violations)
