"""Unit tests for top-k helpers and the Appendix A.3 correspondence."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.partial_ranking import PartialRanking
from repro.core.topk import (
    footrule_location_parameter,
    footrule_with_location,
    project_to_active_domain,
    top_items,
    top_k_cutoff,
    top_k_from_scores,
)
from repro.errors import DomainMismatchError, InvalidRankingError
from repro.generators.random import random_top_k
from repro.metrics.footrule import footrule


class TestTopKFromScores:
    def test_picks_best_scores(self):
        scores = {"a": 3, "b": 1, "c": 2, "d": 9}
        sigma = top_k_from_scores(scores, 2)
        assert top_items(sigma, 2) == ["b", "c"]

    def test_reverse_picks_largest(self):
        scores = {"a": 3, "b": 1, "c": 2}
        sigma = top_k_from_scores(scores, 1, reverse=True)
        assert top_items(sigma, 1) == ["a"]

    def test_bad_k_rejected(self):
        with pytest.raises(InvalidRankingError):
            top_k_from_scores({"a": 1}, 0)
        with pytest.raises(InvalidRankingError):
            top_k_from_scores({"a": 1}, 2)

    def test_ties_broken_deterministically(self):
        scores = {"a": 1, "b": 1, "c": 1}
        assert top_k_from_scores(scores, 2) == top_k_from_scores(dict(scores), 2)


class TestTopKCutoff:
    def test_collapses_tail(self):
        sigma = PartialRanking.from_sequence("abcd")
        cut = top_k_cutoff(sigma, 2)
        assert cut.type == (1, 1, 2)
        assert top_items(cut, 2) == ["a", "b"]

    def test_straddling_bucket_rejected(self):
        sigma = PartialRanking([["a", "b", "c"], ["d"]])
        with pytest.raises(InvalidRankingError):
            top_k_cutoff(sigma, 2)

    def test_bucket_inside_cutoff_is_split_canonically(self):
        sigma = PartialRanking([["b", "a"], ["c"], ["d"]])
        cut = top_k_cutoff(sigma, 2)
        assert top_items(cut, 2) == ["a", "b"]

    def test_bad_k_rejected(self):
        sigma = PartialRanking.from_sequence("abc")
        with pytest.raises(InvalidRankingError):
            top_k_cutoff(sigma, 3)


class TestActiveDomain:
    def test_union_of_tops(self):
        domain = "abcdef"
        sigma = PartialRanking.top_k(["a", "b"], domain)
        tau = PartialRanking.top_k(["c", "b"], domain)
        proj_sigma, proj_tau = project_to_active_domain(sigma, tau, 2)
        assert proj_sigma.domain == proj_tau.domain == {"a", "b", "c"}

    def test_non_topk_rejected(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        tau = PartialRanking.top_k(["a"], "abc")
        with pytest.raises(InvalidRankingError):
            project_to_active_domain(sigma, tau, 1)


class TestFootruleWithLocation:
    def test_identity_at_canonical_location(self):
        domain = "abcdefgh"
        sigma = PartialRanking.top_k(["a", "b", "c"], domain)
        tau = PartialRanking.top_k(["c", "d", "a"], domain)
        ell = footrule_location_parameter(len(domain), 3)
        assert footrule_with_location(sigma, tau, 3, ell) == pytest.approx(
            footrule(sigma, tau)
        )

    @given(st.integers(min_value=0, max_value=10_000))
    def test_identity_on_random_topk_pairs(self, seed):
        n, k = 12, 4
        sigma = random_top_k(n, k, seed)
        tau = random_top_k(n, k, seed + 1)
        assert footrule_with_location(sigma, tau, k) == pytest.approx(
            footrule(sigma, tau)
        )

    def test_location_must_exceed_k(self):
        domain = "abcd"
        sigma = PartialRanking.top_k(["a"], domain)
        tau = PartialRanking.top_k(["b"], domain)
        with pytest.raises(InvalidRankingError):
            footrule_with_location(sigma, tau, 1, ell=1.0)

    def test_domain_mismatch_rejected(self):
        sigma = PartialRanking.top_k(["a"], "abc")
        tau = PartialRanking.top_k(["x"], "xyz")
        with pytest.raises(DomainMismatchError):
            footrule_with_location(sigma, tau, 1)

    def test_non_topk_rejected(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        tau = PartialRanking.top_k(["a"], "abc")
        with pytest.raises(InvalidRankingError):
            footrule_with_location(sigma, tau, 1)

    def test_larger_location_grows_distance(self):
        domain = "abcdef"
        sigma = PartialRanking.top_k(["a"], domain)
        tau = PartialRanking.top_k(["b"], domain)
        canonical = footrule_location_parameter(len(domain), 1)
        small = footrule_with_location(sigma, tau, 1, canonical)
        large = footrule_with_location(sigma, tau, 1, canonical + 3)
        assert large >= small


class TestTopItems:
    def test_returns_in_order(self):
        sigma = PartialRanking.top_k(["c", "a"], "abcd")
        assert top_items(sigma, 2) == ["c", "a"]

    def test_rejects_wrong_shape(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        with pytest.raises(InvalidRankingError):
            top_items(sigma, 1)
