"""Tests for the §A.5.2 reflection construction (Lemmas 21-23, Theorem 24)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partial_ranking import PartialRanking
from repro.errors import DomainMismatchError
from repro.generators.random import random_bucket_order, random_full_ranking, resolve_rng
from repro.metrics.footrule import footrule, footrule_full
from repro.metrics.kendall import kendall, kendall_full
from repro.metrics.reflection import (
    Mirror,
    is_nested,
    mirror_interval,
    nested_elements,
    nesting_free_permutation,
    pi_natural,
    reflect,
    reflected_refinement,
)
from tests.conftest import bucket_order_pairs, bucket_orders


def _random_pair_with_pi(seed: int, n: int = 6):
    rng = resolve_rng(seed)
    sigma = random_bucket_order(n, rng, tie_bias=rng.random())
    tau = random_bucket_order(n, rng, tie_bias=rng.random())
    pi = random_full_ranking(sorted(sigma.domain), rng)
    return sigma, tau, pi


class TestReflect:
    @given(bucket_orders())
    def test_reflected_positions(self, sigma):
        """sigma#(i) = sigma#(i#) = 2 sigma(i) - 1/2 (the defining identity)."""
        reflected = reflect(sigma)
        for item in sigma.domain:
            expected = 2 * sigma[item] - 0.5
            assert reflected[item] == expected
            assert reflected[Mirror(item)] == expected

    @given(bucket_orders())
    def test_reflection_doubles_the_type(self, sigma):
        assert reflect(sigma).type == tuple(2 * size for size in sigma.type)


class TestPiNatural:
    def test_layout(self):
        pi = PartialRanking.from_sequence("abc")
        lifted = pi_natural(pi)
        # originals in pi order, mirrors in reverse pi order afterwards
        assert lifted.items_in_order() == [
            "a",
            "b",
            "c",
            Mirror("c"),
            Mirror("b"),
            Mirror("a"),
        ]
        n = 3
        for item in "abc":
            assert lifted[Mirror(item)] == 2 * n + 1 - pi[item]

    def test_partial_pi_rejected(self):
        with pytest.raises(DomainMismatchError):
            pi_natural(PartialRanking([["a", "b"]]))


class TestReflectedRefinement:
    def test_palindromic_bucket_layout(self):
        sigma = PartialRanking([["a", "b", "c"]])
        pi = PartialRanking.from_sequence("abc")
        sigma_pi = reflected_refinement(sigma, pi)
        assert sigma_pi.items_in_order() == [
            "a",
            "b",
            "c",
            Mirror("c"),
            Mirror("b"),
            Mirror("a"),
        ]

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_equation_7_midpoint_identity(self, seed):
        sigma, _, pi = _random_pair_with_pi(seed)
        sigma_pi = reflected_refinement(sigma, pi)
        for d in sigma.domain:
            midpoint = (sigma_pi[d] + sigma_pi[Mirror(d)]) / 2
            assert midpoint == 2 * sigma[d] - 0.5

    def test_domain_mismatch_rejected(self):
        sigma = PartialRanking([["a", "b"]])
        pi = PartialRanking.from_sequence("xy")
        with pytest.raises(DomainMismatchError):
            reflected_refinement(sigma, pi)


class TestLemma21:
    """K(sigma_pi, tau_pi) = 4 K_prof(sigma, tau), for EVERY pi."""

    @settings(max_examples=40)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_identity_for_random_pi(self, seed):
        sigma, tau, pi = _random_pair_with_pi(seed)
        sigma_pi = reflected_refinement(sigma, pi)
        tau_pi = reflected_refinement(tau, pi)
        assert kendall_full(sigma_pi, tau_pi) == 4 * kendall(sigma, tau)


class TestNesting:
    def test_nested_detection(self):
        # sigma ties a with everything (wide interval); tau makes a strict
        sigma = PartialRanking([["a", "b", "c"]])
        tau = PartialRanking([["a"], ["b"], ["c"]])
        pi = PartialRanking.from_sequence("bac")
        sigma_pi = reflected_refinement(sigma, pi)
        tau_pi = reflected_refinement(tau, pi)
        # in tau_pi every interval is a tight adjacent pair; in sigma_pi
        # the item pi ranks first ('b') spans the whole doubled bucket
        # [1, 6], strictly containing its tau interval [3, 4]
        assert mirror_interval("b", sigma_pi) == (1.0, 6.0)
        assert is_nested("b", sigma_pi, tau_pi)
        assert not is_nested("a", sigma_pi, tau_pi)

    def test_interval_endpoints_are_item_then_mirror(self):
        sigma = PartialRanking([["a", "b"]])
        pi = PartialRanking.from_sequence("ab")
        sigma_pi = reflected_refinement(sigma, pi)
        low, high = mirror_interval("a", sigma_pi)
        assert low < high


class TestLemma22And23:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_constructed_pi_is_nesting_free(self, seed):
        sigma, tau, _ = _random_pair_with_pi(seed)
        pi = nesting_free_permutation(sigma, tau)
        assert nested_elements(sigma, tau, pi) == []

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_footrule_identity_at_constructed_pi(self, seed):
        sigma, tau, _ = _random_pair_with_pi(seed)
        pi = nesting_free_permutation(sigma, tau)
        sigma_pi = reflected_refinement(sigma, pi)
        tau_pi = reflected_refinement(tau, pi)
        assert footrule_full(sigma_pi, tau_pi) == 4 * footrule(sigma, tau)

    @settings(max_examples=40)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_footrule_dominates_for_arbitrary_pi(self, seed):
        """For any pi, F(sigma_pi, tau_pi) >= 4 F_prof — nesting only
        inflates the lifted footrule, never deflates it."""
        sigma, tau, pi = _random_pair_with_pi(seed)
        sigma_pi = reflected_refinement(sigma, pi)
        tau_pi = reflected_refinement(tau, pi)
        assert footrule_full(sigma_pi, tau_pi) >= 4 * footrule(sigma, tau) - 1e-9

    def test_respects_initial_permutation_argument(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        tau = PartialRanking([["c"], ["a", "b"]])
        initial = PartialRanking.from_sequence("bca")
        pi = nesting_free_permutation(sigma, tau, initial=initial)
        assert nested_elements(sigma, tau, pi) == []

    def test_bad_initial_rejected(self):
        sigma = PartialRanking([["a", "b"]])
        with pytest.raises(DomainMismatchError):
            nesting_free_permutation(sigma, sigma, initial=PartialRanking([["a", "b"]]))


class TestTheorem24Rederived:
    """Eq. (5) K_prof <= F_prof <= 2 K_prof, derived through the lift:
    the classical Diaconis-Graham inequality on the doubled domain plus
    Lemmas 21 and 23 yields the partial-ranking inequality."""

    @settings(max_examples=30, deadline=None)
    @given(bucket_order_pairs(max_size=6))
    def test_equation_5_via_reflection(self, pair):
        sigma, tau = pair
        pi = nesting_free_permutation(sigma, tau)
        sigma_pi = reflected_refinement(sigma, pi)
        tau_pi = reflected_refinement(tau, pi)
        k_lifted = kendall_full(sigma_pi, tau_pi)
        f_lifted = footrule_full(sigma_pi, tau_pi)
        # classical DG on the lifted full rankings
        assert k_lifted <= f_lifted <= 2 * k_lifted or (k_lifted == f_lifted == 0)
        # transport back through the 4x identities
        assert k_lifted == 4 * kendall(sigma, tau)
        assert f_lifted == 4 * footrule(sigma, tau)
