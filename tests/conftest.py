"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.core.partial_ranking import PartialRanking

# the exponential brute-force oracles (Hausdorff max-min, Fubini-number
# enumerations) legitimately take longer than hypothesis' default 200ms
# deadline on some draws; correctness, not latency, is what these verify
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# the CI `serve` job runs the stateful serving harness under this fixed
# profile: derandomized so every CI run replays the identical operation
# sequences (a red run is reproducible locally with
# `--hypothesis-profile=serve-ci`), deadline disabled because a stateful
# step's cost depends on the accumulated shard state, not the step
settings.register_profile(
    "serve-ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def bucket_orders(
    min_size: int = 1,
    max_size: int = 7,
) -> st.SearchStrategy[PartialRanking]:
    """Strategy drawing random bucket orders over integer domains.

    The domain is ``0..n-1``; a permutation plus a boundary mask determines
    the buckets, which covers every bucket order of the domain.
    """

    @st.composite
    def draw_bucket_order(draw) -> PartialRanking:
        n = draw(st.integers(min_value=min_size, max_value=max_size))
        order = draw(st.permutations(list(range(n))))
        if n == 1:
            return PartialRanking([order])
        mask = draw(st.lists(st.booleans(), min_size=n - 1, max_size=n - 1))
        buckets: list[list[int]] = [[order[0]]]
        for item, boundary in zip(order[1:], mask):
            if boundary:
                buckets.append([item])
            else:
                buckets[-1].append(item)
        return PartialRanking(buckets)

    return draw_bucket_order()


def full_rankings(
    min_size: int = 1,
    max_size: int = 8,
) -> st.SearchStrategy[PartialRanking]:
    """Strategy drawing random full rankings over integer domains."""
    return st.integers(min_value=min_size, max_value=max_size).flatmap(
        lambda n: st.permutations(list(range(n))).map(PartialRanking.from_sequence)
    )


def bucket_order_pairs(
    min_size: int = 1,
    max_size: int = 6,
) -> st.SearchStrategy[tuple[PartialRanking, PartialRanking]]:
    """Pairs of bucket orders over the same integer domain."""

    @st.composite
    def draw_pair(draw) -> tuple[PartialRanking, PartialRanking]:
        n = draw(st.integers(min_value=min_size, max_value=max_size))
        return (
            draw(_bucket_order_of(n)),
            draw(_bucket_order_of(n)),
        )

    return draw_pair()


def bucket_order_triples(
    min_size: int = 1,
    max_size: int = 5,
) -> st.SearchStrategy[tuple[PartialRanking, PartialRanking, PartialRanking]]:
    """Triples of bucket orders over the same integer domain."""

    @st.composite
    def draw_triple(draw) -> tuple[PartialRanking, PartialRanking, PartialRanking]:
        n = draw(st.integers(min_value=min_size, max_value=max_size))
        return (
            draw(_bucket_order_of(n)),
            draw(_bucket_order_of(n)),
            draw(_bucket_order_of(n)),
        )

    return draw_triple()


def _bucket_order_of(n: int) -> st.SearchStrategy[PartialRanking]:
    @st.composite
    def draw(draw_fn) -> PartialRanking:
        order = draw_fn(st.permutations(list(range(n))))
        if n == 1:
            return PartialRanking([order])
        mask = draw_fn(st.lists(st.booleans(), min_size=n - 1, max_size=n - 1))
        buckets: list[list[int]] = [[order[0]]]
        for item, boundary in zip(order[1:], mask):
            if boundary:
                buckets.append([item])
            else:
                buckets[-1].append(item)
        return PartialRanking(buckets)

    return draw()
