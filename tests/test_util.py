"""Unit tests for repro._util: Fenwick tree, inversions, slice costs."""

from __future__ import annotations

import random
from itertools import combinations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import (
    FenwickTree,
    SortedSliceL1,
    count_inversions,
    ordered_partitions,
    pairs,
    sorted_slice_l1,
)


class TestFenwickTree:
    def test_empty_tree(self):
        tree = FenwickTree(0)
        assert len(tree) == 0
        assert tree.total() == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)

    def test_single_updates_and_prefix_sums(self):
        tree = FenwickTree(5)
        tree.add(0)
        tree.add(3, 2)
        assert tree.prefix_sum(-1) == 0
        assert tree.prefix_sum(0) == 1
        assert tree.prefix_sum(2) == 1
        assert tree.prefix_sum(3) == 3
        assert tree.prefix_sum(4) == 3
        assert tree.total() == 3

    def test_out_of_range_add(self):
        tree = FenwickTree(3)
        with pytest.raises(IndexError):
            tree.add(3)
        with pytest.raises(IndexError):
            tree.add(-1)

    def test_out_of_range_query(self):
        tree = FenwickTree(3)
        with pytest.raises(IndexError):
            tree.prefix_sum(3)

    @given(st.lists(st.integers(min_value=0, max_value=19), max_size=60))
    def test_matches_naive_counts(self, updates):
        tree = FenwickTree(20)
        counts = [0] * 20
        for index in updates:
            tree.add(index)
            counts[index] += 1
        for prefix in range(20):
            assert tree.prefix_sum(prefix) == sum(counts[: prefix + 1])


class TestCountInversions:
    def test_empty_and_singleton(self):
        assert count_inversions([]) == 0
        assert count_inversions([5]) == 0

    def test_sorted_has_none(self):
        assert count_inversions([1, 2, 3, 4]) == 0

    def test_reverse_has_all(self):
        assert count_inversions([4, 3, 2, 1]) == 6

    def test_ties_do_not_count(self):
        assert count_inversions([2, 2, 2]) == 0
        assert count_inversions([3, 2, 2]) == 2

    @given(st.lists(st.integers(min_value=-5, max_value=5), max_size=40))
    def test_matches_quadratic_definition(self, values):
        expected = sum(
            1 for i, j in combinations(range(len(values)), 2) if values[i] > values[j]
        )
        assert count_inversions(values) == expected


class TestSortedSliceL1:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            SortedSliceL1([2.0, 1.0])

    def test_empty_slice_is_free(self):
        slices = SortedSliceL1([1.0, 2.0, 3.0])
        assert slices.cost(1, 1, 10.0) == 0.0

    def test_bad_slice_raises(self):
        slices = SortedSliceL1([1.0, 2.0])
        with pytest.raises(IndexError):
            slices.cost(1, 3, 0.0)
        with pytest.raises(IndexError):
            slices.cost(-1, 1, 0.0)

    def test_point_below_above_and_inside(self):
        slices = SortedSliceL1([1.0, 2.0, 4.0])
        assert slices.cost(0, 3, 0.0) == 7.0
        assert slices.cost(0, 3, 5.0) == 8.0
        assert slices.cost(0, 3, 2.0) == 3.0

    def test_median_cost_is_minimal(self):
        rng = random.Random(3)
        values = sorted(rng.uniform(0, 10) for _ in range(9))
        slices = SortedSliceL1(values)
        best = min(slices.cost(2, 8, point) for point in values[2:8])
        assert slices.median_cost(2, 8) == pytest.approx(best)

    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=25),
        st.floats(min_value=-150, max_value=150),
    )
    def test_matches_naive_sum(self, values, point):
        values = sorted(values)
        slices = SortedSliceL1(values)
        n = len(values)
        start, stop = 0, n
        expected = sum(abs(v - point) for v in values[start:stop])
        assert slices.cost(start, stop, point) == pytest.approx(expected)

    def test_one_shot_wrapper(self):
        assert sorted_slice_l1([1.0, 3.0], 0, 2, 2.0) == 2.0


class TestOrderedPartitions:
    def test_fubini_counts(self):
        # ordered Bell numbers: 1, 1, 3, 13, 75, 541
        for n, expected in [(0, 1), (1, 1), (2, 3), (3, 13), (4, 75)]:
            assert sum(1 for _ in ordered_partitions(list(range(n)))) == expected

    def test_partitions_cover_domain(self):
        for partition in ordered_partitions([1, 2, 3]):
            flattened = [item for bucket in partition for item in bucket]
            assert sorted(flattened) == [1, 2, 3]
            assert all(bucket for bucket in partition)

    def test_partitions_are_distinct(self):
        seen = set()
        for partition in ordered_partitions(list(range(4))):
            key = tuple(tuple(sorted(bucket)) for bucket in partition)
            assert key not in seen
            seen.add(key)


class TestPairs:
    def test_small_values(self):
        assert pairs(0) == 0
        assert pairs(1) == 0
        assert pairs(2) == 1
        assert pairs(5) == 10
