"""Benchmark + reproduction check for E4 (Diaconis-Graham, eq. 1)."""

from __future__ import annotations

from repro.experiments import e04_diaconis_graham


def test_e04_diaconis_graham(benchmark):
    random_table, structured = benchmark(
        e04_diaconis_graham.run, seed=0, n=40, samples=120
    )
    row = random_table.rows[0]
    assert 1.0 - 1e-9 <= row["min_ratio"]
    assert row["max_ratio"] <= 2.0 + 1e-9
    families = {r["family"]: r for r in structured.rows}
    assert families["adjacent transposition"]["F_over_K"] == 2.0
