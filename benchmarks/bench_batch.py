"""Benchmarks for the batch distance layer (PR 2's acceptance numbers).

Two modes:

* ``pytest benchmarks/bench_batch.py --benchmark-only`` — pytest-benchmark
  timings of the inversion counters and the all-pairs matrix versus the
  per-pair loop. Setting ``REPRO_BENCH_SMOKE=1`` shrinks the sizes for the
  CI smoke job.
* ``PYTHONPATH=src python benchmarks/bench_batch.py`` — regenerate
  ``BENCH_PR2.json`` at the repo root: the Fenwick-versus-vectorized
  crossover sweep, the n = 100,000 pair-counting comparison, and the
  80 items × 25 rankings matrix speedups recorded against the acceptance
  criteria.
"""

from __future__ import annotations

import os

import numpy as np

from repro._util import count_inversions as fenwick_inversions
from repro.generators.workloads import mallows_profile_workload, random_profile_workload
from repro.metrics import (
    footrule,
    footrule_hausdorff,
    kendall,
    kendall_hausdorff_counts,
    pair_counts,
    pair_counts_large,
    pairwise_distance_matrix,
)
from repro.metrics.fast import count_inversions_array

_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Benchmark sizes (full -> CI smoke).
_INVERSION_N = 20_000 if _SMOKE else 100_000
_MATRIX_ITEMS = 40 if _SMOKE else 80
_MATRIX_RANKINGS = 8 if _SMOKE else 25

_PER_PAIR = {
    "kendall": kendall,
    "footrule": footrule,
    "kendall_hausdorff": lambda s, t: float(kendall_hausdorff_counts(s, t)),
    "footrule_hausdorff": footrule_hausdorff,
}


def _per_pair_matrix(profile, metric_name):
    fn = _PER_PAIR[metric_name]
    m = len(profile)
    matrix = np.zeros((m, m))
    for i in range(m):  # repro: noqa[RP009]  (this loop is the baseline being measured)
        for j in range(i + 1, m):
            matrix[i, j] = matrix[j, i] = fn(profile[i], profile[j])
    return matrix


def _matrix_profile():
    return mallows_profile_workload(
        _MATRIX_ITEMS, _MATRIX_RANKINGS, phi=0.3, seed=0, max_bucket=6
    ).rankings


class TestInversionCounters:
    def test_vectorized_counter(self, benchmark):
        rng = np.random.default_rng(0)
        values = rng.integers(0, _INVERSION_N, size=_INVERSION_N)
        expected = count_inversions_array(values)
        assert benchmark(count_inversions_array, values) == expected

    def test_fenwick_counter(self, benchmark):
        rng = np.random.default_rng(0)
        values = rng.integers(0, _INVERSION_N, size=_INVERSION_N).tolist()
        expected = count_inversions_array(values)
        assert benchmark(fenwick_inversions, values) == expected


class TestPairClassifiers:
    def test_pair_counts_large(self, benchmark):
        n = 5_000 if _SMOKE else 50_000
        profile = random_profile_workload(n, 2, seed=1).rankings
        counts = benchmark(pair_counts_large, profile[0], profile[1])
        assert counts.total == n * (n - 1) // 2

    def test_pair_counts_fenwick(self, benchmark):
        n = 1_000 if _SMOKE else 5_000
        profile = random_profile_workload(n, 2, seed=1).rankings
        counts = benchmark(pair_counts, profile[0], profile[1])
        assert counts.total == n * (n - 1) // 2


class TestPairwiseMatrix:
    def test_batch_matrix_kendall(self, benchmark):
        profile = _matrix_profile()
        matrix = benchmark(pairwise_distance_matrix, profile, "kendall")
        assert (matrix == matrix.T).all()

    def test_per_pair_matrix_kendall(self, benchmark):
        profile = _matrix_profile()
        matrix = benchmark(_per_pair_matrix, profile, "kendall")
        assert (matrix == pairwise_distance_matrix(profile, "kendall")).all()

    def test_batch_matrix_footrule_hausdorff(self, benchmark):
        profile = _matrix_profile()
        matrix = benchmark(pairwise_distance_matrix, profile, "footrule_hausdorff")
        assert (matrix == matrix.T).all()

    def test_per_pair_matrix_footrule_hausdorff(self, benchmark):
        profile = _matrix_profile()
        matrix = benchmark(_per_pair_matrix, profile, "footrule_hausdorff")
        assert (matrix == pairwise_distance_matrix(profile, "footrule_hausdorff")).all()


# ----------------------------------------------------------------------
# BENCH_PR2.json regeneration
# ----------------------------------------------------------------------


def _best_of(fn, *args, repeats=3):
    import time

    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def _crossover_sweep(rng):
    """Fenwick vs vectorized inversion counting across a size grid."""
    rows = []
    crossover = None
    for n in (100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000):
        values = rng.integers(0, n, size=n)
        as_list = values.tolist()
        t_vec, count_vec = _best_of(count_inversions_array, values)
        t_fen, count_fen = _best_of(fenwick_inversions, as_list)
        assert count_vec == count_fen
        rows.append(
            {
                "n": n,
                "vectorized_s": round(t_vec, 6),
                "fenwick_s": round(t_fen, 6),
                "speedup": round(t_fen / t_vec, 2),
            }
        )
        if crossover is None and t_vec < t_fen:
            crossover = n
    return {"crossover_n": crossover, "rows": rows}


def _pair_counts_comparison():
    """pair_counts vs pair_counts_large at n = 100,000."""
    n = 100_000
    profile = random_profile_workload(n, 2, seed=1).rankings
    sigma, tau = profile
    t_large, counts_large = _best_of(pair_counts_large, sigma, tau, repeats=3)
    t_fenwick, counts_fenwick = _best_of(pair_counts, sigma, tau, repeats=1)
    assert counts_large == counts_fenwick
    return {
        "n": n,
        "pair_counts_large_s": round(t_large, 4),
        "pair_counts_fenwick_s": round(t_fenwick, 4),
        "speedup": round(t_fenwick / t_large, 2),
    }


def _matrix_comparison():
    """Batch vs per-pair all-pairs matrix on 80 items x 25 rankings."""
    profile = mallows_profile_workload(80, 25, phi=0.3, seed=0, max_bucket=6).rankings
    out = {"n_items": 80, "m_rankings": 25, "metrics": {}}
    for metric in sorted(_PER_PAIR):
        t_batch, batch = _best_of(pairwise_distance_matrix, profile, metric)
        t_loop, loop = _best_of(_per_pair_matrix, profile, metric)
        assert (batch == loop).all(), metric
        out["metrics"][metric] = {
            "batch_s": round(t_batch, 5),
            "per_pair_s": round(t_loop, 5),
            "speedup": round(t_loop / t_batch, 2),
        }
    return out


def main() -> None:
    import json
    import platform
    from pathlib import Path

    rng = np.random.default_rng(0)
    payload = {
        "pr": 2,
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "inversion_crossover": _crossover_sweep(rng),
        "pair_counts_n100k": _pair_counts_comparison(),
        "pairwise_matrix_80x25": _matrix_comparison(),
    }
    target = Path(__file__).resolve().parent.parent / "BENCH_PR2.json"
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    matrix = payload["pairwise_matrix_80x25"]["metrics"]
    print(f"wrote {target}")
    print(f"inversion crossover_n: {payload['inversion_crossover']['crossover_n']}")
    print(f"pair_counts n=100k speedup: {payload['pair_counts_n100k']['speedup']}x")
    for metric, numbers in matrix.items():
        print(f"matrix {metric}: {numbers['speedup']}x")


if __name__ == "__main__":
    main()
