"""Micro-benchmarks for the library's core primitives.

These complement the per-experiment benchmarks: they time the individual
operations a downstream user pays for — metric evaluations, the refinement
operator, the bucketing DP, median aggregation, and the sequential-access
algorithms — on a shared set of realistic workloads.
"""

from __future__ import annotations

from repro.aggregate.dp import optimal_partial_ranking
from repro.aggregate.matching import optimal_footrule_aggregation
from repro.aggregate.median import median_full_ranking, median_scores
from repro.aggregate.medrank import medrank, nra_median
from repro.core.refine import star
from repro.metrics.footrule import footrule
from repro.metrics.hausdorff import footrule_hausdorff, kendall_hausdorff_counts
from repro.metrics.kendall import kendall


class TestMetricPrimitives:
    def test_kendall_prof(self, benchmark, random_workload):
        sigma, tau = random_workload.rankings[0], random_workload.rankings[1]
        assert benchmark(kendall, sigma, tau) >= 0

    def test_footrule_prof(self, benchmark, random_workload):
        sigma, tau = random_workload.rankings[0], random_workload.rankings[1]
        assert benchmark(footrule, sigma, tau) >= 0

    def test_kendall_hausdorff(self, benchmark, random_workload):
        sigma, tau = random_workload.rankings[0], random_workload.rankings[1]
        assert benchmark(kendall_hausdorff_counts, sigma, tau) >= 0

    def test_footrule_hausdorff(self, benchmark, random_workload):
        sigma, tau = random_workload.rankings[0], random_workload.rankings[1]
        assert benchmark(footrule_hausdorff, sigma, tau) >= 0


class TestRefinementPrimitives:
    def test_star_operator(self, benchmark, random_workload):
        sigma, tau = random_workload.rankings[0], random_workload.rankings[1]
        result = benchmark(star, tau, sigma)
        assert result.is_refinement_of(sigma)


class TestAggregationPrimitives:
    def test_median_scores(self, benchmark, mallows_workload):
        scores = benchmark(median_scores, list(mallows_workload.rankings))
        assert len(scores) == mallows_workload.domain_size

    def test_median_full_ranking(self, benchmark, mallows_workload):
        result = benchmark(median_full_ranking, list(mallows_workload.rankings))
        assert result.is_full

    def test_dp_bucketing(self, benchmark, mallows_workload):
        scores = median_scores(list(mallows_workload.rankings))
        result = benchmark(optimal_partial_ranking, scores)
        assert result.domain == set(scores)

    def test_matching_optimum(self, benchmark, mallows_workload):
        _, cost = benchmark(optimal_footrule_aggregation, list(mallows_workload.rankings))
        assert cost >= 0


class TestOnlineAggregation:
    def test_online_add_and_topk(self, benchmark, mallows_workload):
        from repro.aggregate.online import OnlineMedianAggregator

        rankings = list(mallows_workload.rankings)

        def toggle_cycle():
            aggregator = OnlineMedianAggregator(rankings[0].domain)
            for ranking in rankings:
                aggregator.add(ranking)
            aggregator.discard(rankings[0])
            return aggregator.top_k(5)

        result = benchmark(toggle_cycle)
        assert result.is_top_k(5)


class TestSequentialAccess:
    def test_medrank_topk(self, benchmark, restaurant_workload):
        result = benchmark(medrank, list(restaurant_workload.rankings), 5)
        assert len(result.winners) == 5
        assert result.access_log.depth <= restaurant_workload.domain_size

    def test_nra_median_topk(self, benchmark, restaurant_workload):
        result = benchmark(nra_median, list(restaurant_workload.rankings), 5)
        assert len(result.winners) == 5
