"""Benchmark + reproduction check for E14 (exact Kemeny vs median)."""

from __future__ import annotations

from repro.experiments import e14_exact_kemeny


def test_e14_exact_kemeny(benchmark):
    (table,) = benchmark(e14_exact_kemeny.run, seed=0, sizes=(6, 10), m=5, trials=5)
    for row in table.rows:
        # the optimum can never beat the pairwise lower bound, and median's
        # measured ratio stays far inside its proved constant factor
        assert row["optimum_over_lower_bound"] >= 1.0 - 1e-9
        assert row["median_max"] <= 6.0  # the transferred constant (3 * 2)
    # exact solving gets more expensive with n; median does not blow up
    assert table.rows[-1]["exact_seconds_total"] >= table.rows[0]["exact_seconds_total"]
