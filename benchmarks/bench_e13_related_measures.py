"""Benchmark + reproduction check for E13 (related-work coefficients)."""

from __future__ import annotations

from repro.experiments import e13_related_measures


def test_e13_related_measures(benchmark):
    (table,) = benchmark(e13_related_measures.run, seed=0, n=30, m=10)
    degenerate = [
        row for row in table.rows if row["workload"] == "constant attribute"
    ]
    assert degenerate
    # the paper's objection: the classical coefficients are undefined on a
    # slice of realistic heavily-tied inputs; the paper's metrics never are
    assert all(row["undefined"] > 0 for row in degenerate)
    defined = [
        row
        for row in table.rows
        if row["workload"] != "constant attribute" and row["measure"] == "tau_b"
    ]
    # where defined, tau-b orders pairs almost exactly like K_prof
    assert all(row["agreement_with_k_prof"] > 0.9 for row in defined)
