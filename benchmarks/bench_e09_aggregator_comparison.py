"""Benchmark + reproduction check for E9 (aggregator comparison)."""

from __future__ import annotations

from repro.experiments import e09_aggregator_comparison


def test_e09_aggregator_comparison(benchmark):
    (table,) = benchmark(e09_aggregator_comparison.run, seed=0, n=50, m=5)
    medians = [row for row in table.rows if row["aggregator"] == "median (full)"]
    picks = [row for row in table.rows if row["aggregator"] == "pick-a-perm"]
    assert medians and picks
    for row in medians:
        assert row["f_prof_ratio"] <= 3.0 + 1e-9
    # the shape the paper predicts: median is consistently closer to the
    # optimum than the trivial pick-a-perm baseline
    mean_median = sum(r["f_prof_ratio"] for r in medians) / len(medians)
    mean_pick = sum(r["f_prof_ratio"] for r in picks) / len(picks)
    assert mean_median <= mean_pick + 1e-9
