"""Benchmark + reproduction check for E7 (Theorem 11 factor 2)."""

from __future__ import annotations

from repro.experiments import e07_full_ranking


def test_e07_full_ranking_aggregation(benchmark):
    (table,) = benchmark(e07_full_ranking.run, seed=0, sizes=(10, 20), m=7, trials=6)
    for row in table.rows:
        assert row["median_max"] <= 2.0 + 1e-9
        assert row["median_mean"] < 1.5  # typical quality near-optimal
