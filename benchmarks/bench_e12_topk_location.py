"""Benchmark + reproduction check for E12 (Appendix A.3 identity)."""

from __future__ import annotations

import pytest

from repro.experiments import e12_topk_location


def test_e12_topk_location(benchmark):
    identity, sweep, fks = benchmark(
        e12_topk_location.run, seed=0, n=40, k=8, samples=40
    )
    assert fks.rows[0]["triangle_violations"] > 0
    row = identity.rows[0]
    assert row["exact_matches"] == row["samples"]
    canonical = (40 + 8 + 1) / 2
    canonical_rows = [r for r in sweep.rows if r["ell"] == canonical]
    assert canonical_rows
    assert canonical_rows[0]["max_ratio"] == pytest.approx(1.0)
