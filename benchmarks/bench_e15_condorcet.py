"""Benchmark + reproduction check for E15 (Condorcet structure)."""

from __future__ import annotations

from repro.experiments import e15_condorcet_structure


def test_e15_condorcet_structure(benchmark):
    (table,) = benchmark(e15_condorcet_structure.run, seed=0, n=7, trials=20)
    for row in table.rows:
        # whenever an instance is acyclic, the topological fast path must
        # equal the exact optimum — the fraction string is always "k/k"
        fraction = row["topo_equals_exact"]
        if fraction != "-":
            matched, total = fraction.split("/")
            assert matched == total
    assert any(row["acyclic_pct"] > 0 for row in table.rows)
