"""Ablation benchmarks for the design choices DESIGN.md §5 calls out.

Each class isolates one implementation decision and measures both sides:

* the Figure 1 incremental DP vs. the generic prefix-sum DP;
* Fenwick-tree discordance counting vs. the quadratic reference;
* the MEDRANK majority quota (0.5 as in the paper vs. stricter quotas);
* Theorem 5 witness construction vs. the Proposition 6 closed form for
  ``K_Haus``.
"""

from __future__ import annotations

import random

import pytest

from repro.aggregate.dp import _prefix_sum_bucketing, figure1_boundaries
from repro.aggregate.medrank import medrank
from repro.generators.random import random_bucket_order
from repro.metrics.hausdorff import kendall_hausdorff, kendall_hausdorff_counts
from repro.metrics.kendall import kendall, kendall_naive


@pytest.fixture(scope="module")
def half_integral_scores():
    rng = random.Random(0)
    return sorted(rng.randint(0, 600) / 2 for _ in range(300))


@pytest.fixture(scope="module")
def ranking_pair():
    rng = random.Random(1)
    return (
        random_bucket_order(300, rng, tie_bias=0.5),
        random_bucket_order(300, rng, tie_bias=0.5),
    )


class TestBucketingDPAblation:
    def test_figure1_incremental(self, benchmark, half_integral_scores):
        result = benchmark(figure1_boundaries, half_integral_scores)
        assert result.cost >= 0

    def test_prefix_sum_generic(self, benchmark, half_integral_scores):
        result = benchmark(_prefix_sum_bucketing, list(half_integral_scores))
        # both must find the same optimum; figure1 is the faster path
        assert result.cost == pytest.approx(figure1_boundaries(half_integral_scores).cost)


class TestKendallAblation:
    def test_fenwick_fast_path(self, benchmark, ranking_pair):
        sigma, tau = ranking_pair
        assert benchmark(kendall, sigma, tau) >= 0

    def test_quadratic_reference(self, benchmark, ranking_pair):
        sigma, tau = ranking_pair
        assert benchmark(kendall_naive, sigma, tau) == kendall(*ranking_pair)


class TestHausdorffAblation:
    def test_theorem5_witnesses(self, benchmark, ranking_pair):
        sigma, tau = ranking_pair
        assert benchmark(kendall_hausdorff, sigma, tau) >= 0

    def test_proposition6_closed_form(self, benchmark, ranking_pair):
        sigma, tau = ranking_pair
        value = benchmark(kendall_hausdorff_counts, sigma, tau)
        assert value == kendall_hausdorff(sigma, tau)


class TestLargeNPairCounting:
    """Fenwick (pure Python, bucket-count-sized tree) vs numpy mergesort.

    The honest outcome this records: the Fenwick path wins at every scale
    tried (see repro/metrics/fast.py for why); the numpy path is kept as
    an independent cross-check implementation.
    """

    @pytest.fixture(scope="class")
    def large_pair(self):
        rng = random.Random(3)
        return (
            random_bucket_order(20_000, rng, tie_bias=0.5),
            random_bucket_order(20_000, rng, tie_bias=0.5),
        )

    def test_fenwick_at_20k(self, benchmark, large_pair):
        sigma, tau = large_pair
        assert benchmark(kendall, sigma, tau) >= 0

    def test_numpy_at_20k(self, benchmark, large_pair):
        from repro.metrics.fast import kendall_large

        sigma, tau = large_pair
        value = benchmark(kendall_large, sigma, tau)
        assert value == kendall(*large_pair)


class TestMedrankQuotaAblation:
    @pytest.mark.parametrize("quota", [0.5, 0.7, 0.9])
    def test_quota_depth_tradeoff(self, benchmark, quota):
        rng = random.Random(7)
        rankings = [random_bucket_order(300, rng, tie_bias=0.3) for _ in range(5)]
        result = benchmark(medrank, rankings, 3, quota)
        assert len(result.winners) == 3
        # the paper's quota (just over half) is the shallowest stopping rule
        if quota == 0.5:
            deeper = medrank(rankings, 3, 0.9)
            assert result.access_log.depth <= deeper.access_log.depth
