"""Benchmark + reproduction check for E6 (Figure 1 DP, Theorem 10)."""

from __future__ import annotations

from repro.experiments import e06_dp_bucketing


def test_e06_dp_bucketing(benchmark):
    dp_table, agg_table = benchmark(
        e06_dp_bucketing.run, seed=0, dp_trials=30, dp_max_n=11, n=5, m=5, agg_trials=10
    )
    row = dp_table.rows[0]
    assert row["dp_matches_bruteforce"] == row["trials"]
    assert row["figure1_matches_bruteforce"] == row["trials"]
    assert agg_table.rows[0]["max_ratio"] <= 2.0 + 1e-9
