"""Million-item memory-layout benchmarks + regression gate (PR 7).

Four headline claims of the shared-memory profile arena layer, measured
end to end:

* **out-of-core MEDRANK at n = 10⁶** — the majority-stopping run over a
  memory-mapped :class:`~repro.db.mmap_lists.SortedListStore` touches a
  small prefix of each list (access counts and saturation are recorded,
  not assumed), and at parity sizes selects the same winners, stops at
  the same depth, and books the same obs counters as the in-memory
  :func:`~repro.aggregate.medrank.medrank`;
* **10⁴-voter pairwise matrix** — the Kendall matrix over ten thousand
  voters, computed from an arena through the cache-blocked GEMM path
  (``m·n²`` beyond the dense budget, so ``strategy="auto"`` tiles);
* **tiled GEMM bit-for-bit** — beyond the dense cutoff, the blocked
  accumulation classifies every pair identically to the one-shot GEMM
  and the per-pair kernels;
* **zero-copy dispatch** — per-pair tasks over the profile, the shape of
  the chunked pairwise-matrix workers: row-pickling dispatch re-ships
  every row once per pair it participates in (m-1 times), while
  ``parallel_map_arena`` ships a ~100-byte handle per task and workers
  read rows from the one shared mapping. Zero-copy must win by at least
  :data:`ZERO_COPY_FLOOR`.

Two modes, via the shared gate CLI in ``conftest.py``:

* ``PYTHONPATH=src python benchmarks/bench_scale.py`` — regenerate
  ``BENCH_SCALE.json`` at the repo root (full sizes);
* ``PYTHONPATH=src python benchmarks/bench_scale.py --check
  BENCH_SCALE.json`` — re-measure and fail on any exactness violation or
  a zero-copy speedup below the floor (speedup shortfalls are re-measured
  before failing; bit-identity mismatches are never noise).

``REPRO_BENCH_SMOKE=1`` shrinks every size so the CI gate stays fast;
the exactness claims are size-independent, and the smoke floor is
relaxed because pool startup dominates at small payloads.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from repro import obs
from repro.aggregate.medrank import medrank, medrank_out_of_core
from repro.core.arena import ProfileArena
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import PartialRanking
from repro.db.mmap_lists import SortedListStore
from repro.generators.workloads import random_profile_workload
from repro.metrics.batch import pair_counts_matrix, pairwise_distance_matrix
from repro.obs import metrics as obs_metrics
from repro.parallel import parallel_map, parallel_map_arena

_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: The acceptance floor: zero-copy dispatch must beat row-pickling by at
#: least this factor. The committed full-size baseline claims 5x; the
#: smoke floor is lower because at smoke payloads pool startup (paid
#: equally by both paths) compresses the ratio.
ZERO_COPY_FLOOR = 2.0 if _SMOKE else 5.0

_MEDRANK_N = 100_000 if _SMOKE else 1_000_000
_MEDRANK_M = 8
_PARITY_N = 2_000
_PARITY_M = 9
_PARITY_K = 3
_VOTERS_M = 2_000 if _SMOKE else 10_000
_VOTERS_N = 32
_TILED_M = 24
_TILED_N = 640
_DISPATCH_M = 16 if _SMOKE else 24
_DISPATCH_N = 150_000 if _SMOKE else 400_000


def _best_of(fn, *args, repeats=3, **kwargs):
    from conftest import best_of

    return best_of(fn, *args, repeats=repeats, **kwargs)


def _captured(fn, *args, **kwargs):
    """``(result, counters)`` with obs counters isolated to this call."""
    obs_metrics.reset()
    with obs.capture():
        result = fn(*args, **kwargs)
    counters = dict(obs_metrics.snapshot()["counters"])
    obs_metrics.reset()
    return result, counters


# ----------------------------------------------------------------------
# Out-of-core MEDRANK: access counts at scale, exact parity at 2k
# ----------------------------------------------------------------------


def _synthetic_orders(n: int, m: int, seed: int, planted: bool) -> np.ndarray:
    """Sorted-access orders (slots by rank) for ``m`` synthetic lists.

    ``planted`` moves slot 0 into the top dozen positions of three
    quarters of the lists — a near-consensus winner the algorithm finds
    at trivial depth; unplanted lists are independent permutations, the
    adversarial case where MEDRANK's depth grows like n^(4/5).
    """
    rng = np.random.default_rng(seed)
    rows = np.empty((m, n), dtype=np.int64)
    for index in range(m):
        rows[index] = rng.permutation(n)
        if planted and index % 4 != 3:
            where = int(np.flatnonzero(rows[index] == 0)[0])
            top = int(rng.integers(0, 12))
            rows[index, [top, where]] = rows[index, [where, top]]
    return rows


def _medrank_at_scale(planted: bool, seed: int) -> dict:
    n, m = _MEDRANK_N, _MEDRANK_M
    rows = _synthetic_orders(n, m, seed, planted)
    with tempfile.TemporaryDirectory() as tmp:
        build_s, store = _best_of(
            SortedListStore.from_rows, Path(tmp) / "lists", rows, repeats=1
        )
        store_bytes = os.path.getsize(store.path)
        select_s, result = _best_of(medrank_out_of_core, store, repeats=1)
    log = result.access_log
    return {
        "n_items": n,
        "m_lists": m,
        "planted_winner": planted,
        "storage": store.storage,
        "store_mb": round(store_bytes / 2**20, 1),
        "build_s": round(build_s, 3),
        "select_s": round(select_s, 3),
        "winner_slot": result.winner_slots[0],
        "depth": log.depth,
        "total_accesses": log.total_accesses,
        "saturation": round(log.total_accesses / (n * m), 6),
    }


def _medrank_parity() -> dict:
    """Winners, stopping depth, and obs counters: mmap store == in-memory."""
    rng = np.random.default_rng(17)
    profile = tuple(
        PartialRanking.from_sequence(rng.permutation(_PARITY_N).tolist())
        for _ in range(_PARITY_M)
    )
    in_memory, memory_counters = _captured(medrank, profile, k=_PARITY_K)
    codec = DomainCodec.for_profile(profile)
    with tempfile.TemporaryDirectory() as tmp:
        store = SortedListStore.build(Path(tmp) / "lists", profile)
        out_of_core, store_counters = _captured(
            medrank_out_of_core, store, k=_PARITY_K
        )
    winners = tuple(codec.items[slot] for slot in out_of_core.winner_slots)
    accesses = "aggregate.medrank.accesses"
    return {
        "n_items": _PARITY_N,
        "m_lists": _PARITY_M,
        "k": _PARITY_K,
        "accesses_in_memory": memory_counters.get(accesses, 0),
        "accesses_out_of_core": store_counters.get(accesses, 0),
        "mmap_sorted_accesses": store_counters.get("db.mmap.accesses", 0),
        "identical": bool(
            winners == in_memory.winners
            and out_of_core.access_log == in_memory.access_log
            and memory_counters.get(accesses) == store_counters.get(accesses)
        ),
    }


# ----------------------------------------------------------------------
# Tiled GEMM: the 10^4-voter matrix and the bit-for-bit agreement claim
# ----------------------------------------------------------------------


def _voter_matrix() -> dict:
    """The Kendall matrix over _VOTERS_M voters, arena-backed, auto-tiled."""
    profile = random_profile_workload(_VOTERS_N, _VOTERS_M, seed=5).rankings
    with ProfileArena.from_profile(profile) as arena:
        seconds, matrix = _best_of(
            pairwise_distance_matrix, arena, "kendall", repeats=1
        )
        _, counters = _captured(pairwise_distance_matrix, arena, "kendall")
    budget_cells = _VOTERS_M * _VOTERS_N * _VOTERS_N
    return {
        "m_voters": _VOTERS_M,
        "n_items": _VOTERS_N,
        "budget_cells": budget_cells,
        "auto_strategy": "tiled" if counters.get("metrics.batch.tiles") else "dense",
        "tiles": counters.get("metrics.batch.tiles", 0),
        "seconds": round(seconds, 3),
        "checksum": float(matrix.sum()),
    }


def _tiled_agreement() -> dict:
    """Beyond the dense cutoff: blocked == one-shot == per-pair, exactly."""
    profile = random_profile_workload(_TILED_N, _TILED_M, seed=11).rankings
    times = {}
    matrices = {}
    for strategy in ("dense", "tiled", "pairs"):
        times[strategy], matrices[strategy] = _best_of(
            pair_counts_matrix, profile, strategy=strategy, repeats=3
        )
    _, counters = _captured(pair_counts_matrix, profile, strategy="tiled")
    equal = all(
        matrices["tiled"].pair_counts(i, j) == matrices["dense"].pair_counts(i, j)
        and matrices["tiled"].pair_counts(i, j) == matrices["pairs"].pair_counts(i, j)
        for i in range(_TILED_M)
        for j in range(i + 1, _TILED_M)
    )
    return {
        "m_rankings": _TILED_M,
        "n_items": _TILED_N,
        "budget_cells": _TILED_M * _TILED_N * _TILED_N,
        "beyond_dense_cutoff": _TILED_M * _TILED_N * _TILED_N > 2**23,
        "tiles": counters.get("metrics.batch.tiles", 0),
        "dense_s": round(times["dense"], 4),
        "tiled_s": round(times["tiled"], 4),
        "pairs_s": round(times["pairs"], 4),
        "bitwise_equal": equal,
    }


# ----------------------------------------------------------------------
# Zero-copy vs row-pickling dispatch
# ----------------------------------------------------------------------


def _pair_l1(payload: tuple[np.ndarray, np.ndarray]) -> float:
    """Pickling path: the task payload carries both position rows."""
    a, b = payload
    return float(np.abs(a - b).sum())


def _arena_pair_l1(arena: ProfileArena, pair: tuple[int, int]) -> float:
    """Zero-copy path: the task payload is two integers; rows come from
    the worker's shared-memory mapping. Integer arithmetic on doubled
    half-positions (the difference fits the storage dtype, the total
    accumulates in int64), halved at the end — bit-identical to the
    float path because every position is an exact multiple of 1/2 and
    both exact sums sit far below 2**53."""
    i, j = pair
    half = arena.half_position_rows
    diff = half[i] - half[j]
    return float(np.abs(diff).sum(dtype=np.int64)) * 0.5


def _dispatch_comparison(repeats: int = 3) -> dict:
    """Per-pair L1 tasks, zero-copy vs row-pickling dispatch.

    The task list is every pair of the profile — the chunk shape of the
    parallel pairwise-matrix path — so pickling dispatch ships each row
    m-1 times while the arena path ships it zero times.
    """
    rng = np.random.default_rng(3)
    profile = tuple(
        PartialRanking.from_sequence(rng.permutation(_DISPATCH_N).tolist())
        for _ in range(_DISPATCH_M)
    )
    pairs = [
        (i, j) for i in range(_DISPATCH_M) for j in range(i + 1, _DISPATCH_M)
    ]
    with ProfileArena.from_profile(profile) as arena:
        del profile  # the arena holds the data; drop the object layer pre-fork
        positions = arena.positions
        payloads = [
            (np.array(positions[i]), np.array(positions[j])) for i, j in pairs
        ]
        del positions
        zero_s, zero = _best_of(
            parallel_map_arena,
            _arena_pair_l1,
            pairs,
            arena,
            jobs=2,
            repeats=repeats,
        )
        pickle_s, pickled = _best_of(
            parallel_map, _pair_l1, payloads, jobs=2, repeats=repeats
        )
        arena_bytes = arena.nbytes
    return {
        "m_rows": _DISPATCH_M,
        "n_items": _DISPATCH_N,
        "tasks": len(pairs),
        "arena_mb": round(arena_bytes / 2**20, 1),
        "pickled_mb_per_run": round(
            sum(a.nbytes + b.nbytes for a, b in payloads) / 2**20, 1
        ),
        "zero_copy_s": round(zero_s, 4),
        "pickling_s": round(pickle_s, 4),
        "speedup": round(pickle_s / zero_s, 2),
        "bitwise_equal": zero == pickled,
    }


# ----------------------------------------------------------------------
# Gate + regeneration via the shared CLI
# ----------------------------------------------------------------------


def _measurements() -> dict:
    return {
        "medrank_planted": _medrank_at_scale(planted=True, seed=1),
        "medrank_adversarial": _medrank_at_scale(planted=False, seed=2),
        "medrank_parity": _medrank_parity(),
        "voter_matrix": _voter_matrix(),
        "tiled_agreement": _tiled_agreement(),
        "dispatch": _dispatch_comparison(),
    }


def check_scale(fresh: dict, retries: int = 2) -> list[str]:
    """Gate failures: any exactness violation, or a zero-copy speedup
    below the floor after ``retries`` re-measurements (pool scheduling on
    shared hardware is noisy; bit-identity never is)."""
    failures = []
    if not fresh["medrank_parity"]["identical"]:
        failures.append(
            "out-of-core MEDRANK diverged from the in-memory run "
            "(winners, depth, or obs counters)"
        )
    if not fresh["tiled_agreement"]["bitwise_equal"]:
        failures.append("tiled GEMM disagrees with dense/per-pair classification")
    if not fresh["dispatch"]["bitwise_equal"]:
        failures.append("zero-copy dispatch returned different bits than pickling")
    best = fresh["dispatch"]["speedup"]
    for attempt in range(retries):
        if best >= ZERO_COPY_FLOOR or failures:
            break
        retry = _dispatch_comparison()
        if not retry["bitwise_equal"]:
            failures.append("zero-copy dispatch returned different bits than pickling")
            break
        print(
            f"zero-copy speedup {best:.1f}x below floor, re-measured at "
            f"{retry['speedup']:.1f}x (retry {attempt + 1})"
        )
        best = max(best, retry["speedup"])
    if not failures and best < ZERO_COPY_FLOOR:
        failures.append(
            f"zero-copy dispatch speedup {best:.1f}x is below the "
            f"{ZERO_COPY_FLOOR:.0f}x floor "
            f"(zero-copy {fresh['dispatch']['zero_copy_s']}s vs "
            f"pickling {fresh['dispatch']['pickling_s']}s)"
        )
    return failures


def _run_check(baseline: dict) -> int:
    from conftest import report_failures

    fresh = _measurements()
    print(f"{'claim':<30}{'baseline':>14}{'fresh':>14}")
    rows = (
        ("medrank accesses (planted)", "medrank_planted", "total_accesses"),
        ("medrank accesses (random)", "medrank_adversarial", "total_accesses"),
        ("voter matrix s", "voter_matrix", "seconds"),
        ("tiled GEMM s", "tiled_agreement", "tiled_s"),
        ("zero-copy speedup", "dispatch", "speedup"),
    )
    for label, section, key in rows:
        print(f"{label:<30}{baseline[section][key]:>14}{fresh[section][key]:>14}")
    print(
        "parity: in-memory "
        f"{fresh['medrank_parity']['accesses_in_memory']} accesses vs "
        f"out-of-core {fresh['medrank_parity']['accesses_out_of_core']}"
    )
    return report_failures(check_scale(fresh), "scale gate")


def _regenerate() -> int:
    from conftest import machine_info, write_baseline

    payload = {
        "pr": 7,
        "zero_copy_floor": ZERO_COPY_FLOOR,
        "smoke": _SMOKE,
        "machine": machine_info(),
        **_measurements(),
    }
    write_baseline("BENCH_SCALE.json", payload)
    planted = payload["medrank_planted"]
    random = payload["medrank_adversarial"]
    print(
        f"medrank n={planted['n_items']}: planted {planted['total_accesses']} "
        f"accesses (saturation {planted['saturation']:.2%}), adversarial "
        f"{random['total_accesses']} ({random['saturation']:.2%})"
    )
    print(
        f"voter matrix {payload['voter_matrix']['m_voters']} voters: "
        f"{payload['voter_matrix']['seconds']}s "
        f"({payload['voter_matrix']['auto_strategy']}, "
        f"{payload['voter_matrix']['tiles']} tiles)"
    )
    print(
        f"tiled agreement: bitwise_equal={payload['tiled_agreement']['bitwise_equal']}"
    )
    print(
        f"dispatch: zero-copy {payload['dispatch']['speedup']}x over pickling "
        f"(floor {ZERO_COPY_FLOOR:.0f}x), "
        f"bitwise_equal={payload['dispatch']['bitwise_equal']}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    from conftest import gate_main

    return gate_main(
        argv,
        description=__doc__,
        check_help="re-measure and fail on exactness violations or a "
        "zero-copy speedup below the floor",
        check=_run_check,
        regenerate=_regenerate,
    )


if __name__ == "__main__":
    raise SystemExit(main())
