"""Benchmark + reproduction check for E8 (MEDRANK sorted-access cost)."""

from __future__ import annotations

from repro.experiments import e08_medrank_access


def test_e08_medrank_access(benchmark):
    (table,) = benchmark(e08_medrank_access.run, seed=0, n=150, m=4, k=3)
    rows = {row["workload"]: row for row in table.rows}
    correlated = next(row for name, row in rows.items() if "phi=0.2" in name)
    # on correlated inputs the winners surface after a tiny prefix
    assert correlated["medrank_saturation"] < 0.2
    for row in table.rows:
        assert row["nra_winner_gap"] == 0.0
        assert row["medrank_depth"] <= row["nra_depth"]
