"""Benchmarks + perf-regression gate for the exact Kemeny solvers (PR 9).

Three modes:

* ``pytest benchmarks/bench_kemeny.py --benchmark-only`` —
  pytest-benchmark timings of the SCC-condensed solver on a banded
  n=120 instance (certified exact, refused outright by the monolithic
  DP) and of the vectorized Held–Karp DP versus the retained Python
  reference. ``REPRO_BENCH_SMOKE=1`` shrinks the DP comparison size;
  the banded solve stays at full size — it is milliseconds either way,
  and shrinking it would un-gate the acceptance claim.
* ``PYTHONPATH=src python benchmarks/bench_kemeny.py`` — regenerate
  ``BENCH_KEMENY.json`` at the repo root: the n>=100 banded acceptance
  solve, the per-state DP speedup, the pair-cost-matrix timing, and the
  smoke-size timings the CI gate compares against.
* ``PYTHONPATH=src python benchmarks/bench_kemeny.py --check BENCH_KEMENY.json``
  — the regression gate: re-measure the smoke sizes and exit non-zero
  if any timing is more than 2x the committed baseline, if the
  vectorized-DP speedup fell below half its committed value, or if the
  n>=100 banded instance is no longer certified exact in under a second
  (the acceptance criterion, checked absolutely on every run).
"""

from __future__ import annotations

import os

from repro.aggregate.decompose import kemeny_decomposed
from repro.aggregate.kemeny import (
    _held_karp,
    _held_karp_python,
    kemeny_optimal,
    pair_cost_array,
)
from repro.errors import AggregationError
from repro.generators.workloads import banded_profile_workload, random_profile_workload

_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: The acceptance instance: n >= 100 sparse-conflict items, certified
#: exact under a second. Never shrunk — the gate's reason to exist.
_BANDED_ITEMS = 120
_BANDED_RANKINGS = 5
_BAND = 6
_BANDED_TIE_BIAS = 0.3

#: Vectorized-vs-python DP comparison size (full -> CI smoke).
_DP_ITEMS = 11 if _SMOKE else 13
_COST_ITEMS = 60 if _SMOKE else 150
_COST_RANKINGS = 12 if _SMOKE else 40

_GATED_TIMINGS = (
    "decomposed_banded_s",
    "held_karp_vectorized_s",
    "pair_cost_array_s",
)
_GATED_SPEEDUPS = ("held_karp",)


def _banded_profile():
    return banded_profile_workload(
        _BANDED_ITEMS, _BANDED_RANKINGS, band=_BAND, seed=3, tie_bias=_BANDED_TIE_BIAS
    ).rankings


def _dp_cost(n):
    profile = random_profile_workload(n, 5, seed=4, tie_bias=0.3).rankings
    _, cost = pair_cost_array(profile)
    return cost


class TestDecomposedSolve:
    def test_banded_instance_certified_exact(self, benchmark):
        """The monolithic solver refuses this instance; decomposition
        certifies the global optimum in milliseconds."""
        profile = _banded_profile()
        result = benchmark(kemeny_decomposed, profile, require_exact=True)
        assert result.exact
        assert result.largest_component <= _BAND
        assert len(result.ranking.domain) == _BANDED_ITEMS

    def test_monolithic_refuses_same_instance(self):
        profile = _banded_profile()
        try:
            kemeny_optimal(profile, decompose=False)
        except AggregationError:
            pass
        else:  # pragma: no cover - the guard regressed
            raise AssertionError("monolithic solver accepted n=120")


class TestHeldKarp:
    def test_vectorized(self, benchmark):
        cost = _dp_cost(_DP_ITEMS)
        order, value = benchmark(_held_karp, cost, _DP_ITEMS)
        assert sorted(order) == list(range(_DP_ITEMS))
        assert value >= 0.0

    def test_python_reference(self, benchmark):
        cost = _dp_cost(_DP_ITEMS)
        order, value = benchmark(_held_karp_python, cost, _DP_ITEMS)
        # bit-identical to the vectorized DP, tie resolution included
        assert (order, value) == _held_karp(cost, _DP_ITEMS)


# ----------------------------------------------------------------------
# BENCH_KEMENY.json regeneration and the --check regression gate
# ----------------------------------------------------------------------


def _best_of(fn, *args, repeats=3, **kwargs):
    from conftest import best_of

    return best_of(fn, *args, repeats=repeats, **kwargs)


def _banded_acceptance(repeats=5):
    """The headline: n=120 banded profile solved exactly, under a second."""
    profile = _banded_profile()
    seconds, result = _best_of(kemeny_decomposed, profile, require_exact=True, repeats=repeats)
    histogram: dict[int, int] = {}
    for component in result.components:
        histogram[len(component)] = histogram.get(len(component), 0) + 1
    return {
        "n_items": _BANDED_ITEMS,
        "m_rankings": _BANDED_RANKINGS,
        "band": _BAND,
        "seconds": round(seconds, 5),
        "exact": result.exact,
        "components": len(result.components),
        "largest_component": result.largest_component,
        "component_histogram": {str(k): v for k, v in sorted(histogram.items())},
        "dp_states": result.dp_states,
        "objective": result.objective,
    }


def _held_karp_comparison(n, repeats=3):
    """Vectorized vs Python-reference DP at one size, bit-identity checked."""
    cost = _dp_cost(n)
    t_vec, vec = _best_of(_held_karp, cost, n, repeats=repeats)
    t_ref, ref = _best_of(_held_karp_python, cost, n, repeats=repeats)
    assert vec == ref
    states = 1 << n
    return {
        "n_items": n,
        "dp_states": states,
        "vectorized_s": round(t_vec, 5),
        "python_s": round(t_ref, 5),
        "speedup": round(t_ref / t_vec, 2),
        "vectorized_ns_per_state": round(t_vec / states * 1e9, 1),
    }


def _cost_timing(n, m, repeats=5):
    profile = random_profile_workload(n, m, seed=2).rankings
    seconds, (items, _) = _best_of(pair_cost_array, profile, repeats=repeats)
    return {"n_items": len(items), "m_rankings": m, "seconds": round(seconds, 5)}


def _smoke_measurements():
    """The fixed-size timings the CI gate compares run-over-run.

    The banded acceptance solve runs at full size even under
    ``REPRO_BENCH_SMOKE`` so the under-a-second claim is checked on
    every CI run, not only on regeneration machines.
    """
    banded = _banded_acceptance(repeats=5)
    dp = _held_karp_comparison(11, repeats=5)
    cost = _cost_timing(60, 12, repeats=7)
    return {
        "sizes": {"banded": "120x5 band=6", "held_karp": "n=11", "cost": "60x12"},
        "timings": {
            "decomposed_banded_s": banded["seconds"],
            "held_karp_vectorized_s": dp["vectorized_s"],
            "held_karp_python_s": dp["python_s"],
            "pair_cost_array_s": cost["seconds"],
        },
        "speedups": {"held_karp": dp["speedup"]},
        "acceptance": {
            "banded_exact": banded["exact"],
            "banded_seconds": banded["seconds"],
            "banded_n": banded["n_items"],
        },
    }


def check_against_baseline(baseline: dict, fresh: dict) -> list[str]:
    """Gate failures: >2x slowdown, halved DP speedup, or a broken
    acceptance claim (n>=100 certified exact under one second)."""
    failures = []
    base_timings = baseline["smoke"]["timings"]
    base_speedups = baseline["smoke"]["speedups"]
    for name in _GATED_TIMINGS:
        old, new = base_timings[name], fresh["timings"][name]
        if new > 2.0 * old:
            failures.append(
                f"{name}: {new:.5f}s is {new / old:.1f}x the baseline {old:.5f}s"
            )
    for name in _GATED_SPEEDUPS:
        old, new = base_speedups[name], fresh["speedups"][name]
        if new < old / 2.0:
            failures.append(
                f"{name} speedup fell to {new:.1f}x (baseline {old:.1f}x)"
            )
    acceptance = fresh["acceptance"]
    if not acceptance["banded_exact"]:
        failures.append("banded n=120 solve is no longer certified exact")
    if acceptance["banded_n"] < 100:
        failures.append(
            f"acceptance instance shrank to n={acceptance['banded_n']} < 100"
        )
    if acceptance["banded_seconds"] >= 1.0:
        failures.append(
            f"banded n=120 exact solve took {acceptance['banded_seconds']:.3f}s "
            ">= the 1s acceptance ceiling"
        )
    return failures


def _run_check(baseline: dict) -> int:
    from conftest import report_failures

    fresh = _smoke_measurements()
    print(f"{'kernel':<28}{'baseline':>12}{'fresh':>12}")
    for name in sorted(fresh["timings"]):
        print(
            f"{name:<28}{baseline['smoke']['timings'][name]:>12.5f}"
            f"{fresh['timings'][name]:>12.5f}"
        )
    for name in sorted(fresh["speedups"]):
        print(
            f"{name + ' speedup':<28}{baseline['smoke']['speedups'][name]:>11.1f}x"
            f"{fresh['speedups'][name]:>11.1f}x"
        )
    return report_failures(check_against_baseline(baseline, fresh), "kemeny perf gate")


def _regenerate() -> int:
    from conftest import machine_info, write_baseline

    payload = {
        "pr": 9,
        "machine": machine_info(),
        "banded_120x5": _banded_acceptance(),
        "held_karp_13": _held_karp_comparison(13),
        "cost_150x40": _cost_timing(150, 40),
        "smoke": _smoke_measurements(),
    }
    write_baseline("BENCH_KEMENY.json", payload)
    banded = payload["banded_120x5"]
    print(
        f"banded n={banded['n_items']}: exact={banded['exact']} "
        f"in {banded['seconds']}s "
        f"({banded['components']} components, largest {banded['largest_component']})"
    )
    dp = payload["held_karp_13"]
    print(f"held_karp n=13: {dp['speedup']}x over the python reference")
    return 0


def main(argv: list[str] | None = None) -> int:
    from conftest import gate_main

    return gate_main(
        argv,
        description=__doc__,
        check_help="re-measure smoke sizes and fail on regression vs this JSON",
        check=_run_check,
        regenerate=_regenerate,
    )


if __name__ == "__main__":
    raise SystemExit(main())
