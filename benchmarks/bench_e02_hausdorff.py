"""Benchmark + reproduction check for E2 (Theorem 5 / Proposition 6)."""

from __future__ import annotations

from repro.experiments import e02_hausdorff


def test_e02_hausdorff_characterization(benchmark):
    exhaustive, randomized = benchmark(
        e02_hausdorff.run, seed=0, exhaustive_n=3, random_n=5, samples=15
    )
    row = exhaustive.rows[0]
    assert row["K_Haus_thm5_ok"] == row["pairs"]
    assert row["F_Haus_thm5_ok"] == row["pairs"]
    assert row["K_Haus_prop6_ok"] == row["pairs"]
    random_row = randomized.rows[0]
    assert random_row["K_Haus_ok"] == random_row["samples"]
    assert random_row["F_Haus_ok"] == random_row["samples"]
