"""Benchmark + reproduction check for E10 (metric computation scaling)."""

from __future__ import annotations

from repro.experiments import e10_scaling


def test_e10_scaling(benchmark):
    (table,) = benchmark(e10_scaling.run, seed=0, sizes=(100, 200, 400))
    for row in table.rows:
        if row["kendall_naive_s"] == row["kendall_naive_s"]:  # not NaN
            assert row["speedup"] >= 1.0
    # the fast path grows sub-quadratically: doubling n must not quadruple time
    t100 = table.rows[0]["kendall_fast_s"]
    t400 = table.rows[2]["kendall_fast_s"]
    assert t400 < 16 * max(t100, 1e-6)
