"""Benchmarks + perf-regression gate for the aggregation kernels (PR 4).

Three modes:

* ``pytest benchmarks/bench_aggregate.py --benchmark-only`` —
  pytest-benchmark timings of the position-matrix median kernels versus
  the dict reference path, and of the online aggregator versus per-update
  recomputation. ``REPRO_BENCH_SMOKE=1`` shrinks the sizes for CI.
* ``PYTHONPATH=src python benchmarks/bench_aggregate.py`` — regenerate
  ``BENCH_PR4.json`` at the repo root: the 80-voter × 10,000-item
  acceptance numbers, the online-update comparison, the Kemeny cost-matrix
  timing, the dict/array engine crossover sweep, and the smoke-size
  timings the CI gate compares against.
* ``PYTHONPATH=src python benchmarks/bench_aggregate.py --check BENCH_PR4.json``
  — the regression gate: re-measure the smoke sizes and exit non-zero if
  any kernel is more than 2× slower than the committed baseline, or any
  kernel-vs-dict speedup fell below half its committed value (the
  speedup-ratio check is machine-independent; the absolute check assumes
  comparable hardware — see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import os

from repro.aggregate.batch import median_scores_batch, median_top_k_batch
from repro.aggregate.kemeny import pair_cost_matrix
from repro.aggregate.median import median_scores, median_top_k
from repro.aggregate.online import OnlineMedianAggregator
from repro.generators.workloads import random_profile_workload

_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Benchmark sizes (full -> CI smoke). The full median sizes are the
#: acceptance-criteria profile: 80 voters over 10,000 items.
_MEDIAN_ITEMS = 1_000 if _SMOKE else 10_000
_MEDIAN_RANKINGS = 24 if _SMOKE else 80
_ONLINE_ITEMS = 500 if _SMOKE else 2_000
_ONLINE_RANKINGS = 24 if _SMOKE else 80
_KEMENY_ITEMS = 60 if _SMOKE else 150
_KEMENY_RANKINGS = 12 if _SMOKE else 40

#: Smoke-size names the --check gate compares (kernel paths only; the
#: dict timings are recorded for the speedup ratios).
_GATED_TIMINGS = (
    "median_scores_array_s",
    "median_top_k_array_s",
    "online_updates_s",
    "kemeny_cost_matrix_s",
)
_GATED_SPEEDUPS = ("median_scores", "median_top_k", "online")


def _median_profile(n=None, m=None):
    return random_profile_workload(
        n or _MEDIAN_ITEMS, m or _MEDIAN_RANKINGS, seed=0, tie_bias=0.3
    ).rankings


def _online_profile():
    return random_profile_workload(_ONLINE_ITEMS, _ONLINE_RANKINGS, seed=1).rankings


def _online_updates(profile, domain):
    aggregator = OnlineMedianAggregator(domain)
    scores = None
    for ranking in profile:
        aggregator.add(ranking)
        scores = aggregator.scores()
    return scores


def _online_recompute(profile):
    scores = None
    for upto in range(1, len(profile) + 1):
        scores = median_scores_batch(profile[:upto])
    return scores


class TestMedianScores:
    def test_array_engine(self, benchmark):
        profile = _median_profile()
        scores = benchmark(median_scores_batch, profile)
        assert len(scores) == _MEDIAN_ITEMS

    def test_dict_engine(self, benchmark):
        profile = _median_profile()
        scores = benchmark(median_scores, profile, engine="dict")
        assert scores == median_scores_batch(profile)


class TestMedianTopK:
    def test_array_engine(self, benchmark):
        profile = _median_profile()
        k = _MEDIAN_ITEMS // 10
        result = benchmark(median_top_k_batch, profile, k)
        assert len(result.buckets[0]) == 1  # top-k output starts with singletons

    def test_dict_engine(self, benchmark):
        profile = _median_profile()
        k = _MEDIAN_ITEMS // 10
        result = benchmark(median_top_k, profile, k, engine="dict")
        assert result == median_top_k_batch(profile, k)


class TestOnlineAggregator:
    def test_incremental_updates(self, benchmark):
        profile = _online_profile()
        scores = benchmark(_online_updates, profile, range(_ONLINE_ITEMS))
        assert scores == median_scores_batch(profile)

    def test_recompute_each_update(self, benchmark):
        profile = _online_profile()
        scores = benchmark(_online_recompute, profile)
        assert scores == median_scores_batch(profile)


class TestKemenyCosting:
    def test_pair_cost_matrix(self, benchmark):
        profile = random_profile_workload(
            _KEMENY_ITEMS, _KEMENY_RANKINGS, seed=2
        ).rankings
        items, cost = benchmark(pair_cost_matrix, profile)
        assert len(items) == _KEMENY_ITEMS
        assert all(cost[i][i] == 0.0 for i in range(len(items)))


# ----------------------------------------------------------------------
# BENCH_PR4.json regeneration and the --check regression gate
# ----------------------------------------------------------------------


def _best_of(fn, *args, repeats=3, **kwargs):
    from conftest import best_of

    return best_of(fn, *args, repeats=repeats, **kwargs)


def _median_comparison(n, m, repeats=3):
    """dict vs array medians (plain, weighted, top-k) at one size."""
    profile = _median_profile(n, m)
    weights = [1.0 + (index % 4) * 0.25 for index in range(m)]
    k = max(1, n // 10)
    t_array, array_scores = _best_of(median_scores_batch, profile, repeats=repeats)
    t_dict, dict_scores = _best_of(
        median_scores, profile, engine="dict", repeats=repeats
    )
    assert array_scores == dict_scores
    t_array_w, array_weighted = _best_of(
        median_scores_batch, profile, weights=weights, repeats=repeats
    )
    t_dict_w, dict_weighted = _best_of(
        median_scores, profile, weights=weights, engine="dict", repeats=repeats
    )
    assert array_weighted == dict_weighted
    t_array_k, array_topk = _best_of(median_top_k_batch, profile, k, repeats=repeats)
    t_dict_k, dict_topk = _best_of(
        median_top_k, profile, k, engine="dict", repeats=repeats
    )
    assert array_topk == dict_topk
    return {
        "n_items": n,
        "m_rankings": m,
        "k": k,
        "median_scores": {
            "dict_s": round(t_dict, 5),
            "array_s": round(t_array, 5),
            "speedup": round(t_dict / t_array, 2),
        },
        "median_scores_weighted": {
            "dict_s": round(t_dict_w, 5),
            "array_s": round(t_array_w, 5),
            "speedup": round(t_dict_w / t_array_w, 2),
        },
        "median_top_k": {
            "dict_s": round(t_dict_k, 5),
            "array_s": round(t_array_k, 5),
            "speedup": round(t_dict_k / t_array_k, 2),
        },
    }


def _online_comparison():
    profile = _online_profile()
    t_online, online_scores = _best_of(
        _online_updates, profile, range(_ONLINE_ITEMS)
    )
    t_recompute, recomputed = _best_of(_online_recompute, profile)
    assert online_scores == recomputed
    return {
        "n_items": _ONLINE_ITEMS,
        "m_updates": _ONLINE_RANKINGS,
        "incremental_s": round(t_online, 5),
        "recompute_s": round(t_recompute, 5),
        "speedup": round(t_recompute / t_online, 2),
    }


def _kemeny_timing():
    profile = random_profile_workload(_KEMENY_ITEMS, _KEMENY_RANKINGS, seed=2).rankings
    seconds, (items, _) = _best_of(pair_cost_matrix, profile)
    return {
        "n_items": len(items),
        "m_rankings": _KEMENY_RANKINGS,
        "seconds": round(seconds, 5),
    }


def _engine_crossover():
    """dict vs array median_scores across cell counts (m·n).

    Supports the ``_ARRAY_MIN_CELLS`` threshold ``engine="auto"`` uses:
    the crossover is where the array path first wins.
    """
    rows = []
    crossover = None
    m = 8
    for n in (16, 32, 64, 128, 256, 512, 1_024, 4_096):
        profile = _median_profile(n, m)
        t_array, array_scores = _best_of(median_scores_batch, profile, repeats=5)
        t_dict, dict_scores = _best_of(
            median_scores, profile, engine="dict", repeats=5
        )
        assert array_scores == dict_scores
        cells = m * n
        rows.append(
            {
                "cells": cells,
                "dict_s": round(t_dict, 6),
                "array_s": round(t_array, 6),
                "speedup": round(t_dict / t_array, 2),
            }
        )
        if crossover is None and t_array < t_dict:
            crossover = cells
    return {"m_rankings": m, "crossover_cells": crossover, "rows": rows}


def _smoke_measurements():
    """The fixed-size timings the CI gate compares run-over-run."""
    median = _median_comparison(1_000, 24, repeats=5)
    online_profile = random_profile_workload(500, 24, seed=1).rankings
    t_online, online_scores = _best_of(
        _online_updates, online_profile, range(500), repeats=5
    )
    t_recompute, recomputed = _best_of(_online_recompute, online_profile, repeats=5)
    assert online_scores == recomputed
    # big enough that the timing is milliseconds, not scheduler noise
    kemeny_profile = random_profile_workload(400, 24, seed=2).rankings
    t_kemeny, _ = _best_of(pair_cost_matrix, kemeny_profile, repeats=7)
    return {
        "sizes": {"median": "1000x24", "online": "500x24", "kemeny": "400x24"},
        "timings": {
            "median_scores_array_s": median["median_scores"]["array_s"],
            "median_scores_dict_s": median["median_scores"]["dict_s"],
            "median_top_k_array_s": median["median_top_k"]["array_s"],
            "median_top_k_dict_s": median["median_top_k"]["dict_s"],
            "online_updates_s": round(t_online, 5),
            "online_recompute_s": round(t_recompute, 5),
            "kemeny_cost_matrix_s": round(t_kemeny, 5),
        },
        "speedups": {
            "median_scores": median["median_scores"]["speedup"],
            "median_top_k": median["median_top_k"]["speedup"],
            "online": round(t_recompute / t_online, 2),
        },
    }


def check_against_baseline(baseline: dict, fresh: dict) -> list[str]:
    """Gate failures: >2x kernel slowdown or halved kernel-vs-dict speedup."""
    failures = []
    base_timings = baseline["smoke"]["timings"]
    base_speedups = baseline["smoke"]["speedups"]
    for name in _GATED_TIMINGS:
        old, new = base_timings[name], fresh["timings"][name]
        if new > 2.0 * old:
            failures.append(
                f"{name}: {new:.5f}s is {new / old:.1f}x the baseline {old:.5f}s"
            )
    for name in _GATED_SPEEDUPS:
        old, new = base_speedups[name], fresh["speedups"][name]
        if new < old / 2.0:
            failures.append(
                f"{name} speedup fell to {new:.1f}x (baseline {old:.1f}x)"
            )
    return failures


def _run_check(baseline: dict) -> int:
    from conftest import report_failures

    fresh = _smoke_measurements()
    print(f"{'kernel':<28}{'baseline':>12}{'fresh':>12}")
    for name in sorted(fresh["timings"]):
        print(
            f"{name:<28}{baseline['smoke']['timings'][name]:>12.5f}"
            f"{fresh['timings'][name]:>12.5f}"
        )
    for name in sorted(fresh["speedups"]):
        print(
            f"{name + ' speedup':<28}{baseline['smoke']['speedups'][name]:>11.1f}x"
            f"{fresh['speedups'][name]:>11.1f}x"
        )
    return report_failures(check_against_baseline(baseline, fresh), "perf gate")


def _regenerate() -> int:
    from conftest import machine_info, write_baseline

    payload = {
        "pr": 4,
        "machine": machine_info(),
        "median_80x10000": _median_comparison(10_000, 80),
        "online_2000x80": _online_comparison(),
        "kemeny_cost_150x40": _kemeny_timing(),
        "engine_crossover": _engine_crossover(),
        "smoke": _smoke_measurements(),
    }
    write_baseline("BENCH_PR4.json", payload)
    median = payload["median_80x10000"]
    for key in ("median_scores", "median_scores_weighted", "median_top_k"):
        print(f"{key} 80x10000: {median[key]['speedup']}x")
    print(f"online 2000x80: {payload['online_2000x80']['speedup']}x")
    print(f"engine crossover: {payload['engine_crossover']['crossover_cells']} cells")
    return 0


def main(argv: list[str] | None = None) -> int:
    from conftest import gate_main

    return gate_main(
        argv,
        description=__doc__,
        check_help="re-measure smoke sizes and fail on regression vs this JSON",
        check=_run_check,
        regenerate=_regenerate,
    )


if __name__ == "__main__":
    raise SystemExit(main())
