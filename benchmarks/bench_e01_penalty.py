"""Benchmark + reproduction check for E1 (Proposition 13 regimes)."""

from __future__ import annotations

from repro.experiments import e01_penalty


def test_e01_penalty_regimes(benchmark):
    counterexample, sweep = benchmark(e01_penalty.run, seed=0, n=7, samples=14)
    by_p = {row["p"]: row for row in counterexample.rows}
    assert not by_p[0.0]["regular"]
    assert not by_p[0.25]["triangle_holds"]
    assert by_p[0.5]["triangle_holds"]
    for row in sweep.rows:
        if row["p"] >= 0.5:
            assert row["triangle_violations"] == 0
