"""Load generator + regression gate for the serving layer (PR 8).

Simulates 10,000+ concurrent users against an in-process
:class:`repro.serve.RankingService` — the same object the HTTP layer
wraps, so the numbers measure the serving core (batching, caching,
sharded aggregation) without socket noise. Every user is an asyncio
task with its own deterministic RNG issuing a mix of distance queries
(75%), ranking updates (15%) and consensus queries (10%) over a shared
set of domains; a sampled subset of distance responses is checked
bit-for-bit against the direct two-ranking metric while the load runs.

Three numbers matter: **throughput** (operations/second over the whole
gather), **latency** p50/p99 (per-operation wall time, including queuing
behind the other 10k tasks), and the **mean batch size** the coalescer
achieved (requests answered per kernel call — the whole point of the
layer).

Modes:

* ``PYTHONPATH=src python benchmarks/bench_serve.py`` — run the full
  load and regenerate ``BENCH_SERVE.json`` at the repo root.
* ``PYTHONPATH=src python benchmarks/bench_serve.py --check
  BENCH_SERVE.json`` — the CI gate: re-run (smoke-sized operation count
  under ``REPRO_BENCH_SMOKE=1``, same user count) and fail on any
  bit-exactness mismatch, on throughput below
  :data:`THROUGHPUT_FLOOR` x baseline, or on the coalescer degenerating
  to un-batched execution (mean batch < :data:`MIN_MEAN_BATCH`).
"""

from __future__ import annotations

import asyncio
import os
import random
import statistics
import time

from repro import obs
from repro.errors import AggregationError
from repro.generators.random import random_bucket_order, resolve_rng
from repro.metrics.kendall import kendall
from repro.serve import RankingService, ServeConfig

#: Gate: re-measured throughput must stay above this fraction of baseline.
THROUGHPUT_FLOOR = 0.35

#: Gate: the coalescer must average at least this many requests per flush.
MIN_MEAN_BATCH = 2.0

_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Simulated concurrent users (the acceptance bar is 10k+; smoke keeps it).
USERS = 10_000
#: Operations per user (total ops = USERS * OPS_PER_USER).
OPS_PER_USER = 1 if _SMOKE else 3

#: Shared workload shape: domains and the per-domain ranking pools users
#: draw queries from (pooled rankings make coalesced batches dedup well,
#: which is exactly the serving workload the batcher is built for).
DOMAIN_COUNT = 4
DOMAIN_SIZE = 8
POOL_SIZE = 40

#: Every ``VERIFY_EVERY``-th user double-checks each distance response
#: against the direct metric while the load runs.
VERIFY_EVERY = 97


def _build_pools(seed: int) -> list[tuple[frozenset, list]]:
    rng = resolve_rng(seed)
    pools = []
    for _ in range(DOMAIN_COUNT):
        pool = [random_bucket_order(DOMAIN_SIZE, rng, tie_bias=0.4) for _ in range(POOL_SIZE)]
        pools.append((frozenset(range(DOMAIN_SIZE)), pool))
    return pools


async def _user(
    service: RankingService,
    user_id: int,
    pools: list[tuple[frozenset, list]],
    latencies: list[float],
    mismatches: list[str],
) -> None:
    rng = random.Random((user_id * 0x9E3779B1 + 0xB5) & 0xFFFFFFFF)
    domain, pool = pools[user_id % len(pools)]
    voter = f"u{user_id}"
    verify = user_id % VERIFY_EVERY == 0
    for _ in range(OPS_PER_USER):
        roll = rng.random()
        start = time.perf_counter()
        if roll < 0.15:
            await service.update(domain, voter, rng.choice(pool))
        elif roll < 0.90:
            sigma, tau = rng.choice(pool), rng.choice(pool)
            value = await service.distance(domain, sigma, tau)
            if verify and value != kendall(sigma, tau, 0.5):
                mismatches.append(
                    f"user {user_id}: distance {value!r} != direct kendall"
                )
        else:
            try:
                await service.consensus(domain, kind="scores")
            except AggregationError:
                # an all-removed shard is a legal transient; not an error
                pass
        latencies.append(time.perf_counter() - start)


async def _run_load(seed: int) -> dict:
    service = RankingService(ServeConfig(batch_window=0.001, cache_capacity=4096))
    pools = _build_pools(seed)
    # seed every domain so consensus queries have voters from the start
    for index, (domain, pool) in enumerate(pools):
        for voter in range(5):
            await service.update(domain, f"seed{voter}", pool[(voter + index) % len(pool)])
    latencies: list[float] = []
    mismatches: list[str] = []
    start = time.perf_counter()
    await asyncio.gather(
        *(
            _user(service, user_id, pools, latencies, mismatches)
            for user_id in range(USERS)
        )
    )
    wall = time.perf_counter() - start
    await service.drain()
    ordered = sorted(latencies)

    def percentile(fraction: float) -> float:
        return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]

    return {
        "users": USERS,
        "ops": len(latencies),
        "wall_s": round(wall, 4),
        "throughput_ops_per_s": round(len(latencies) / wall, 1),
        "latency_ms": {
            "p50": round(percentile(0.50) * 1e3, 3),
            "p99": round(percentile(0.99) * 1e3, 3),
            "mean": round(statistics.fmean(latencies) * 1e3, 3),
        },
        "mismatches": mismatches,
        "service_stats": service.stats(),
    }


def _measure(seed: int = 0) -> dict:
    """One full load run under a capture session (for the batch counters)."""
    with obs.capture():
        result = asyncio.run(_run_load(seed))
    counters = obs.snapshot()["counters"]
    flushes = int(counters.get("serve.batch.flushes", 0))
    coalesced = int(counters.get("serve.batch.coalesced", 0))
    result["batching"] = {
        "flushes": flushes,
        "coalesced_requests": coalesced,
        "mean_batch": round(coalesced / flushes, 2) if flushes else 0.0,
        "matrix_calls": int(counters.get("metrics.batch.matrix_calls", 0)),
    }
    result["cache"] = {
        "hits": int(counters.get("serve.cache.hits", 0)),
        "misses": int(counters.get("serve.cache.misses", 0)),
    }
    # the committed baseline should not freeze per-run service internals
    result.pop("service_stats")
    return result


def _regenerate() -> int:
    from conftest import machine_info, write_baseline

    result = _measure()
    if result["mismatches"]:
        for mismatch in result["mismatches"]:
            print(f"MISMATCH: {mismatch}")
        return 1
    payload = {
        "pr": 8,
        "machine": machine_info(),
        "throughput_floor": THROUGHPUT_FLOOR,
        "min_mean_batch": MIN_MEAN_BATCH,
        **result,
    }
    write_baseline("BENCH_SERVE.json", payload)
    return 0


def _check(baseline: dict) -> int:
    from conftest import report_failures

    result = _measure()
    failures: list[str] = []
    failures.extend(f"bit-exactness: {m}" for m in result["mismatches"])
    floor = baseline.get("throughput_floor", THROUGHPUT_FLOOR)
    wanted = floor * float(baseline["throughput_ops_per_s"])
    got = float(result["throughput_ops_per_s"])
    if got < wanted:
        failures.append(
            f"throughput {got:.0f} ops/s below {floor}x baseline "
            f"({baseline['throughput_ops_per_s']} ops/s)"
        )
    mean_batch = float(result["batching"]["mean_batch"])
    if mean_batch < baseline.get("min_mean_batch", MIN_MEAN_BATCH):
        failures.append(
            f"coalescing degenerated: mean batch {mean_batch} < "
            f"{baseline.get('min_mean_batch', MIN_MEAN_BATCH)} requests/flush"
        )
    print(
        f"serve load: {result['ops']} ops by {result['users']} users, "
        f"{got:.0f} ops/s, p50 {result['latency_ms']['p50']}ms, "
        f"p99 {result['latency_ms']['p99']}ms, mean batch {mean_batch}"
    )
    return report_failures(failures, "bench_serve gate")


def main(argv: list[str] | None = None) -> int:
    from conftest import gate_main

    return gate_main(
        argv,
        description="Serving-layer load benchmark (10k concurrent simulated users)",
        check_help="re-run the load and fail on mismatches or throughput regression",
        check=_check,
        regenerate=_regenerate,
    )


if __name__ == "__main__":
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    sys.exit(main())
