"""Plugin batch-kernel benchmarks + regression gate (PR 10).

The two first-party metric plugins (the position-weighted Spearman
footrule and the weighted top-difference distance) each ship a batch
kernel that serves a whole profile from one table build and one
``(m, n)`` value-matrix gather, where the per-pair scalar path
re-derives both per call. This gate measures that claim on an
80-ranking × 10,000-item Mallows profile and holds the kernels to the
repo's established bars:

* **bit-for-bit agreement** — the batch matrix must equal the per-pair
  scalar loop entry for entry (exact dyadic arithmetic, ``==``, never a
  tolerance);
* **≥ :data:`SPEEDUP_FLOOR`× speedup** — batch over the per-pair loop
  (5× full-size; relaxed at smoke sizes where fixed costs dominate);
* **> 2× regression fail** — fresh batch wall time may not exceed twice
  the committed baseline's.

Two modes, via the shared gate CLI in ``conftest.py``:

* ``PYTHONPATH=src python benchmarks/bench_plugins.py`` — regenerate
  ``BENCH_PLUGINS.json`` at the repo root (full sizes);
* ``... --check BENCH_PLUGINS.json`` — re-measure and fail on any
  exactness violation, a speedup below the floor (re-measured once
  before failing; bit-identity mismatches are never noise), or a > 2×
  batch-time regression.

``REPRO_BENCH_SMOKE=1`` shrinks the profile for the CI smoke job.
"""

from __future__ import annotations

import os

import numpy as np

from repro.generators.workloads import mallows_profile_workload
from repro.metrics.plugins.top_difference import top_difference, top_difference_matrix
from repro.metrics.plugins.weighted_footrule import (
    weighted_footrule,
    weighted_footrule_matrix,
)

_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: The acceptance floor: the batch kernel must beat the per-pair scalar
#: loop by at least this factor. Relaxed under smoke sizes, where the
#: one-off table build is a larger share of the tiny total.
SPEEDUP_FLOOR = 2.0 if _SMOKE else 5.0

#: Allowed slowdown of the fresh batch time against the committed
#: baseline before the gate fails.
REGRESSION_FACTOR = 2.0

#: Profile shape (rankings × items): full -> CI smoke.
_PROFILE_M = 16 if _SMOKE else 80
_PROFILE_N = 1_000 if _SMOKE else 10_000

_PLUGINS = (
    ("weighted_footrule", weighted_footrule, weighted_footrule_matrix),
    ("top_difference", top_difference, top_difference_matrix),
)


def _profile():
    return mallows_profile_workload(
        _PROFILE_N, _PROFILE_M, phi=0.3, seed=0, max_bucket=6
    ).rankings


def _per_pair_matrix(profile, scalar):
    m = len(profile)
    matrix = np.zeros((m, m))
    for i in range(m):  # repro: noqa[RP009]  (this loop is the baseline being measured)
        for j in range(i + 1, m):
            matrix[i, j] = matrix[j, i] = scalar(profile[i], profile[j])
    return matrix


# ----------------------------------------------------------------------
# pytest-benchmark smoke tests
# ----------------------------------------------------------------------


class TestPluginBatchKernels:
    def test_weighted_footrule_matrix(self, benchmark):
        profile = _profile()
        matrix = benchmark(weighted_footrule_matrix, profile)
        assert (matrix == matrix.T).all()

    def test_top_difference_matrix(self, benchmark):
        profile = _profile()
        matrix = benchmark(top_difference_matrix, profile)
        assert (matrix == matrix.T).all()

    def test_per_pair_weighted_footrule(self, benchmark):
        # the baseline the ≥5× bar is measured against, at smoke sizes
        profile = _profile()[:8]
        matrix = benchmark(_per_pair_matrix, profile, weighted_footrule)
        assert (matrix == weighted_footrule_matrix(profile)).all()


# ----------------------------------------------------------------------
# Gate + regeneration via the shared CLI
# ----------------------------------------------------------------------


def _plugin_comparison(name, scalar, batch) -> dict:
    from conftest import best_of

    profile = _profile()
    t_batch, batch_matrix = best_of(batch, profile)
    t_loop, loop_matrix = best_of(_per_pair_matrix, profile, scalar, repeats=1)
    return {
        "batch_s": round(t_batch, 5),
        "per_pair_s": round(t_loop, 5),
        "speedup": round(t_loop / t_batch, 2),
        "bitwise_equal": bool(np.array_equal(batch_matrix, loop_matrix)),
    }


def _measurements() -> dict:
    return {
        "profile": {"m_rankings": _PROFILE_M, "n_items": _PROFILE_N},
        "plugins": {
            name: _plugin_comparison(name, scalar, batch)
            for name, scalar, batch in _PLUGINS
        },
    }


def check_plugins(baseline: dict, fresh: dict) -> list[str]:
    """Gate failures: exactness violations, sub-floor speedups (after one
    re-measure), or a > 2× batch-time regression vs the baseline."""
    failures = []
    for name, scalar, batch in _PLUGINS:
        numbers = fresh["plugins"][name]
        if not numbers["bitwise_equal"]:
            failures.append(f"{name}: batch kernel disagrees with the scalar loop")
            continue
        speedup = numbers["speedup"]
        if speedup < SPEEDUP_FLOOR:
            retry = _plugin_comparison(name, scalar, batch)
            if not retry["bitwise_equal"]:
                failures.append(f"{name}: batch kernel disagrees with the scalar loop")
                continue
            print(
                f"{name}: speedup {speedup:.1f}x below floor, re-measured at "
                f"{retry['speedup']:.1f}x"
            )
            speedup = max(speedup, retry["speedup"])
            numbers = retry if retry["speedup"] > numbers["speedup"] else numbers
        if speedup < SPEEDUP_FLOOR:
            failures.append(
                f"{name}: batch speedup {speedup:.1f}x is below the "
                f"{SPEEDUP_FLOOR:.0f}x floor (batch {numbers['batch_s']}s vs "
                f"per-pair {numbers['per_pair_s']}s)"
            )
        base = baseline["plugins"][name]["batch_s"]
        if base > 0 and numbers["batch_s"] > REGRESSION_FACTOR * base:
            failures.append(
                f"{name}: batch time {numbers['batch_s']}s regressed more than "
                f"{REGRESSION_FACTOR:.0f}x over the committed {base}s"
            )
    return failures


def _run_check(baseline: dict) -> int:
    from conftest import report_failures

    fresh = _measurements()
    print(f"{'plugin':<24}{'baseline batch_s':>18}{'fresh batch_s':>16}{'speedup':>10}")
    for name, _scalar, _batch in _PLUGINS:
        print(
            f"{name:<24}{baseline['plugins'][name]['batch_s']:>18}"
            f"{fresh['plugins'][name]['batch_s']:>16}"
            f"{fresh['plugins'][name]['speedup']:>10}"
        )
    return report_failures(check_plugins(baseline, fresh), "plugins gate")


def _regenerate() -> int:
    from conftest import machine_info, write_baseline

    payload = {
        "pr": 10,
        "speedup_floor": SPEEDUP_FLOOR,
        "regression_factor": REGRESSION_FACTOR,
        "smoke": _SMOKE,
        "machine": machine_info(),
        **_measurements(),
    }
    write_baseline("BENCH_PLUGINS.json", payload)
    for name, numbers in payload["plugins"].items():
        print(
            f"{name}: batch {numbers['speedup']}x over per-pair "
            f"(floor {SPEEDUP_FLOOR:.0f}x), "
            f"bitwise_equal={numbers['bitwise_equal']}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    from conftest import gate_main

    return gate_main(
        argv,
        description=__doc__,
        check_help="re-measure and fail on exactness violations, a batch "
        "speedup below the floor, or a >2x batch-time regression",
        check=_run_check,
        regenerate=_regenerate,
    )


if __name__ == "__main__":
    raise SystemExit(main())
