"""Benchmark + reproduction check for E3 (Theorem 7 equivalence constants)."""

from __future__ import annotations

from repro.experiments import e03_equivalence


def test_e03_equivalence_constants(benchmark):
    tables = benchmark(e03_equivalence.run, seed=0, n=25, samples=40)
    assert tables
    for table in tables:
        for row in table.rows:
            assert row["within_bounds"]
            assert 1.0 - 1e-9 <= row["min_ratio"] <= row["max_ratio"] <= row["proved_max"] + 1e-9
