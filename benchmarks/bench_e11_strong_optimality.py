"""Benchmark + reproduction check for E11 (Theorems 33/35)."""

from __future__ import annotations

from repro.experiments import e11_strong_optimality


def test_e11_strong_optimality(benchmark):
    (table,) = benchmark(e11_strong_optimality.run, seed=0, n=5, k=2, m=5, trials=10)
    for row in table.rows:
        assert row["within_both"]
        assert row["c (f-dagger ratio)"] <= 2.0 + 1e-9
