"""Benchmark + reproduction check for E5 (Theorem 9 top-k factor 3)."""

from __future__ import annotations

from repro.experiments import e05_topk_aggregation


def test_e05_median_topk_factor_three(benchmark):
    (table,) = benchmark(e05_topk_aggregation.run, seed=0, n=5, k=2, m=5, trials=15)
    by_name = {row["aggregator"]: row for row in table.rows}
    assert by_name["median"]["max_ratio"] <= 3.0 + 1e-9
    assert by_name["median"]["mean_ratio"] < 2.0  # typical quality is far better
