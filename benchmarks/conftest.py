"""Shared benchmark fixtures.

Each ``bench_e*.py`` file wraps one EXPERIMENTS.md experiment: the
benchmark measures the runner's wall time at reduced-but-representative
parameters, and the test body re-asserts the experiment's headline claim so
a benchmark run doubles as a reproduction check.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.generators.workloads import (
    db_profile_workload,
    mallows_profile_workload,
    random_profile_workload,
)


@pytest.fixture(scope="session")
def mallows_workload():
    return mallows_profile_workload(80, 5, phi=0.3, seed=0, max_bucket=6)


@pytest.fixture(scope="session")
def random_workload():
    return random_profile_workload(80, 5, seed=0, tie_bias=0.5)


@pytest.fixture(scope="session")
def restaurant_workload():
    return db_profile_workload(80, seed=0, catalog="restaurants")
