"""Shared benchmark fixtures and the unified ``--check`` gate CLI.

Each ``bench_e*.py`` file wraps one EXPERIMENTS.md experiment: the
benchmark measures the runner's wall time at reduced-but-representative
parameters, and the test body re-asserts the experiment's headline claim so
a benchmark run doubles as a reproduction check.

Run with::

    pytest benchmarks/ --benchmark-only

The gated scripts (``bench_aggregate.py``, ``bench_obs.py``,
``bench_analysis.py``, ``bench_scale.py``) additionally share one CLI
shape, implemented here so the four gates cannot drift apart:

* no arguments — regenerate the committed baseline JSON at the repo root
  (:func:`write_baseline`, stamped with :func:`machine_info`);
* ``--check BASELINE`` — re-measure and exit non-zero on regression,
  with failures printed as ``REGRESSION: ...`` lines on stderr
  (:func:`report_failures`), so CI logs look identical across gates.

Scripts import these helpers lazily inside ``main()`` — when executed as
``python benchmarks/bench_X.py`` the benchmarks directory is
``sys.path[0]`` and ``import conftest`` resolves here; under pytest the
gate CLI never runs.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.generators.workloads import (
    db_profile_workload,
    mallows_profile_workload,
    random_profile_workload,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def best_of(fn, *args, repeats: int = 3, **kwargs):
    """``(best_seconds, last_result)`` over ``repeats`` timed calls.

    The minimum is the classic noise-robust estimator (what ``timeit``
    reports): scheduler spikes only ever make a call slower.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


def machine_info() -> dict:
    """The provenance stamp every committed baseline carries."""
    import numpy as np

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def load_baseline(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def write_baseline(filename: str, payload: dict) -> Path:
    """Write a baseline JSON at the repo root and announce it."""
    target = REPO_ROOT / filename
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {target}")
    return target


def report_failures(failures: list[str], gate_name: str) -> int:
    """Print ``REGRESSION:`` lines (stderr) or the OK line; return exit code."""
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print(f"{gate_name}: OK")
    return 1 if failures else 0


def gate_main(
    argv: list[str] | None,
    *,
    description: str | None,
    check_help: str,
    check,
    regenerate,
) -> int:
    """The shared ``--check BASELINE`` / regenerate argument parser.

    ``check`` receives the parsed baseline dict and returns an exit code;
    ``regenerate`` takes no arguments and returns an exit code.
    """
    import argparse

    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--check", metavar="BASELINE", help=check_help)
    options = parser.parse_args(argv)
    if options.check:
        return check(load_baseline(options.check))
    return regenerate()


@pytest.fixture(scope="session")
def mallows_workload():
    return mallows_profile_workload(80, 5, phi=0.3, seed=0, max_bucket=6)


@pytest.fixture(scope="session")
def random_workload():
    return random_profile_workload(80, 5, seed=0, tie_bias=0.5)


@pytest.fixture(scope="session")
def restaurant_workload():
    return db_profile_workload(80, seed=0, catalog="restaurants")
