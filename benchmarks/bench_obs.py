"""Benchmarks + overhead gate for the repro.obs observability layer (PR 5).

The layer's core promise is that *disabled* instrumentation is free: with
no trace session active, every ``obs.trace``/``obs.add`` site reduces to
one truthiness check. The instrumented kernels are deliberately split
into a public tracing wrapper and a private ``_impl`` so the wrapper cost
is directly measurable as ``(t_public - t_impl) / t_impl``.

Three modes:

* ``pytest benchmarks/bench_obs.py --benchmark-only`` — pytest-benchmark
  timings of the wrapper and impl paths plus the enabled-mode cost.
  ``REPRO_BENCH_SMOKE=1`` shrinks the sizes for CI.
* ``PYTHONPATH=src python benchmarks/bench_obs.py`` — regenerate
  ``BENCH_OBS.json`` at the repo root with the measured disabled-mode
  overhead of ``pair_counts_large`` (n = 20,000) and
  ``median_scores_array`` (1,000 x 24) and the enabled-mode span cost.
* ``PYTHONPATH=src python benchmarks/bench_obs.py --check BENCH_OBS.json``
  — the acceptance gate: re-measure and exit non-zero if the disabled
  overhead of either kernel exceeds :data:`OVERHEAD_BUDGET` (2%).
"""

from __future__ import annotations

import os

from repro import obs
from repro.aggregate.batch import _median_scores_array_impl, median_scores_array
from repro.core.codec import DomainCodec
from repro.generators.workloads import random_profile_workload
from repro.metrics.batch import position_matrix
from repro.metrics.fast import _pair_counts_large_impl, pair_counts_large

#: The acceptance budget: disabled-mode wrapper overhead per kernel call.
OVERHEAD_BUDGET = 0.02

_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Benchmark sizes (full -> CI smoke).
_PAIRS_ITEMS = 4_000 if _SMOKE else 20_000
_MEDIAN_ITEMS = 1_000
_MEDIAN_RANKINGS = 24


def _ranking_pair():
    a, b = random_profile_workload(_PAIRS_ITEMS, 2, seed=0, tie_bias=0.3).rankings
    return a, b


def _positions():
    rankings = random_profile_workload(
        _MEDIAN_ITEMS, _MEDIAN_RANKINGS, seed=1, tie_bias=0.3
    ).rankings
    codec = DomainCodec.for_profile(rankings)
    return position_matrix(rankings, codec)


class TestDisabledOverhead:
    """Wrapper vs impl with tracing off: the difference is the overhead."""

    def test_pair_counts_large_wrapper(self, benchmark):
        a, b = _ranking_pair()
        assert not obs.enabled()
        counts = benchmark(pair_counts_large, a, b)
        assert counts.total == _PAIRS_ITEMS * (_PAIRS_ITEMS - 1) // 2

    def test_pair_counts_large_impl(self, benchmark):
        a, b = _ranking_pair()
        counts = benchmark(_pair_counts_large_impl, a, b)
        assert counts.total == _PAIRS_ITEMS * (_PAIRS_ITEMS - 1) // 2

    def test_median_scores_array_wrapper(self, benchmark):
        positions = _positions()
        assert not obs.enabled()
        scores = benchmark(median_scores_array, positions)
        assert scores.shape == (_MEDIAN_ITEMS,)

    def test_median_scores_array_impl(self, benchmark):
        positions = _positions()
        scores = benchmark(_median_scores_array_impl, positions)
        assert scores.shape == (_MEDIAN_ITEMS,)


class TestEnabledCost:
    """Span + counter cost with a live capture session (informational)."""

    def test_pair_counts_large_traced(self, benchmark):
        a, b = _ranking_pair()

        def run():
            with obs.capture():
                return pair_counts_large(a, b)

        counts = benchmark(run)
        assert counts.total == _PAIRS_ITEMS * (_PAIRS_ITEMS - 1) // 2


# ----------------------------------------------------------------------
# BENCH_OBS.json regeneration and the --check overhead gate
# ----------------------------------------------------------------------


def _loop_seconds(fn, *args, loops: int, repeats: int) -> float:
    """Best-of-``repeats`` seconds for ``loops`` back-to-back calls."""
    import time

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _overhead(public, impl, *args, loops: int, repeats: int) -> dict:
    """Relative disabled-mode overhead of ``public`` over ``impl``.

    Minimum-of-many timed blocks, with the two functions interleaved
    (public/impl order flipping every round) so frequency scaling and
    cache warmth hit both symmetrically. The minimum is the classic
    noise-robust estimator (what ``timeit`` reports): scheduler spikes
    only ever make a block slower, so the per-function minima converge
    on the true cost and their difference isolates the wrapper overhead.
    Negative values are honest noise-floor readings; the gate only
    compares against the budget.
    """
    t_public = float("inf")
    t_impl = float("inf")
    for index in range(repeats):
        order = ((public, True), (impl, False))
        if index % 2:
            order = ((impl, False), (public, True))
        for fn, is_public in order:
            elapsed = _loop_seconds(fn, *args, loops=loops, repeats=1)
            if is_public:
                t_public = min(t_public, elapsed)
            else:
                t_impl = min(t_impl, elapsed)
    return {
        "public_s": round(t_public, 6),
        "impl_s": round(t_impl, 6),
        "overhead": round((t_public - t_impl) / t_impl, 5),
    }


def _enabled_cost(loops: int, repeats: int) -> dict:
    """Per-call span cost with a live session, on a tiny kernel call.

    Uses a 32-item pair count so the span bookkeeping (not the kernel)
    dominates; this bounds the enabled-mode cost per instrumented call.
    """
    a, b = random_profile_workload(32, 2, seed=3).rankings

    def traced():
        pair_counts_large(a, b)

    baseline = float("inf")
    enabled = float("inf")
    for _ in range(repeats):  # interleaved rounds, same as _overhead
        baseline = min(baseline, _loop_seconds(traced, loops=loops, repeats=1))
        with obs.capture():
            enabled = min(enabled, _loop_seconds(traced, loops=loops, repeats=1))
    per_call_ns = max(0.0, enabled - baseline) / loops * 1e9
    return {
        "disabled_s": round(baseline, 6),
        "enabled_s": round(enabled, 6),
        "span_cost_ns_per_call": round(per_call_ns),
    }


def _kernel_measurers() -> dict:
    """Per-kernel overhead measurement thunks, so the gate can re-run one.

    Block sizes are tuned so each timed block is ~20-40ms (large against
    timer resolution) with enough interleaved rounds for the minima to
    converge; smoke sizes keep the CI gate under a few seconds.
    """
    a, b = _ranking_pair()
    positions = _positions()
    pair_loops = 12 if _SMOKE else 2
    return {
        "pair_counts_large": lambda: _overhead(
            pair_counts_large,
            _pair_counts_large_impl,
            a,
            b,
            loops=pair_loops,
            repeats=18,
        ),
        "median_scores_array": lambda: _overhead(
            median_scores_array,
            _median_scores_array_impl,
            positions,
            loops=200,
            repeats=18,
        ),
    }


def _measurements() -> dict:
    if obs.enabled():  # a stray REPRO_TRACE would invalidate every number
        raise RuntimeError("disable REPRO_TRACE before measuring obs overhead")
    measurers = _kernel_measurers()
    return {
        "sizes": {
            "pair_counts_large": f"n={_PAIRS_ITEMS}",
            "median_scores_array": f"{_MEDIAN_ITEMS}x{_MEDIAN_RANKINGS}",
        },
        "disabled_overhead": {name: measure() for name, measure in measurers.items()},
        "enabled_cost": _enabled_cost(loops=2_000, repeats=7),
    }


def check_overheads(fresh: dict, measurers: dict | None = None) -> list[str]:
    """Gate failures: any disabled-mode overhead above the 2% budget.

    The true wrapper cost is one truthiness check (far below the budget),
    so an over-budget reading on shared hardware is almost always timer
    noise — but a real regression reproduces. When ``measurers`` is
    given, a kernel fails only if two re-measurements stay over budget
    too (the minimum of the three estimates is what is compared).
    """
    failures = []
    for name, data in sorted(fresh["disabled_overhead"].items()):
        best = data["overhead"]
        if best > OVERHEAD_BUDGET and measurers is not None:
            for attempt in range(2):
                retry = measurers[name]()["overhead"]
                print(
                    f"{name}: overhead {best:.2%} over budget, "
                    f"re-measured at {retry:.2%} (retry {attempt + 1})"
                )
                best = min(best, retry)
                if best <= OVERHEAD_BUDGET:
                    break
        if best > OVERHEAD_BUDGET:
            failures.append(
                f"{name}: disabled-mode overhead {best:.2%} "
                f"exceeds the {OVERHEAD_BUDGET:.0%} budget "
                f"(public {data['public_s']}s vs impl {data['impl_s']}s)"
            )
    return failures


def _run_check(baseline: dict) -> int:
    from conftest import report_failures

    measurers = _kernel_measurers()
    fresh = _measurements()
    print(f"{'kernel':<24}{'baseline':>12}{'fresh':>12}{'budget':>10}")
    for name in sorted(fresh["disabled_overhead"]):
        old = baseline["disabled_overhead"][name]["overhead"]
        new = fresh["disabled_overhead"][name]["overhead"]
        print(f"{name:<24}{old:>11.2%}{new:>11.2%}{OVERHEAD_BUDGET:>9.0%}")
    print(
        "span cost (enabled): "
        f"{fresh['enabled_cost']['span_cost_ns_per_call']} ns/call"
    )
    return report_failures(check_overheads(fresh, measurers), "obs overhead gate")


def _regenerate() -> int:
    from conftest import machine_info, write_baseline

    measured = _measurements()
    # the committed baseline should hold converged minima, not a noise
    # spike that happened to land in the generation run: re-measure any
    # over-budget kernel with the same retry discipline as the gate
    measurers = _kernel_measurers()
    for name, data in measured["disabled_overhead"].items():
        for _ in range(2):
            if data["overhead"] <= OVERHEAD_BUDGET:
                break
            retry = measurers[name]()
            if retry["overhead"] < data["overhead"]:
                measured["disabled_overhead"][name] = data = retry
    payload = {
        "pr": 5,
        "overhead_budget": OVERHEAD_BUDGET,
        "machine": machine_info(),
        **measured,
    }
    write_baseline("BENCH_OBS.json", payload)
    for name, data in sorted(payload["disabled_overhead"].items()):
        print(f"{name}: disabled overhead {data['overhead']:.2%}")
    print(
        "span cost (enabled): "
        f"{payload['enabled_cost']['span_cost_ns_per_call']} ns/call"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    from conftest import gate_main

    return gate_main(
        argv,
        description=__doc__,
        check_help="re-measure and fail if disabled-mode overhead exceeds 2%%",
        check=_run_check,
        regenerate=_regenerate,
    )


if __name__ == "__main__":
    raise SystemExit(main())
