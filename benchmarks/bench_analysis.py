"""Benchmarks + regression gate for the repro.analysis engine (PR 6).

The engine's headline performance promise is the whole-run result cache:
an unchanged tree must re-analyze from cache at least
:data:`SPEEDUP_FLOOR` (5x) faster than a cold run, with byte-identical
findings. Timings are taken **in-process** around the analysis calls —
interpreter and import startup are deliberately excluded, since the
claim is about analysis work, not Python boot time.

Two modes:

* ``PYTHONPATH=src python benchmarks/bench_analysis.py`` — regenerate
  ``BENCH_ANALYSIS.json`` at the repo root with cold/warm timings over
  ``src/repro``, the cache speedup, and the file-hashing cost.
* ``PYTHONPATH=src python benchmarks/bench_analysis.py --check
  BENCH_ANALYSIS.json`` — the acceptance gate: re-measure and exit
  non-zero if the warm speedup drops below the floor or the warm
  findings differ from the cold ones.

``REPRO_BENCH_SMOKE=1`` restricts the analyzed tree to
``src/repro/analysis`` so the CI gate stays fast; the speedup floor is
the same in both modes (a cache hit skips *all* analysis work, so the
floor holds at any tree size above trivial).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path

#: The acceptance floor: warm (cached) run must be at least this many
#: times faster than the cold run that populated the cache.
SPEEDUP_FLOOR = 5.0

_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

REPO_ROOT = Path(__file__).resolve().parent.parent
_TARGET = REPO_ROOT / "src" / "repro" / ("analysis" if _SMOKE else "")


def _fingerprint(result) -> str:
    """Order-stable digest of every finding in ``result``."""
    payload = json.dumps([f.to_dict() for f in result.findings], sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def _timed_run(cache_dir: Path):
    from repro.analysis.cli import _run_with_cache

    start = time.perf_counter()
    result = _run_with_cache(
        [str(_TARGET)],
        root=REPO_ROOT,
        select=None,
        jobs=None,
        use_cache=True,
        cache_dir=cache_dir,
    )
    return time.perf_counter() - start, result


def _hashing_seconds() -> float:
    """Cost of the warm run's unavoidable work: hashing every file."""
    from repro.analysis.engine import _iter_python_files

    start = time.perf_counter()
    for path in _iter_python_files([_TARGET]):
        hashlib.sha256(path.read_bytes()).digest()
    return time.perf_counter() - start


def _measure(cold_repeats: int = 2, warm_repeats: int = 5) -> dict:
    """Best-of-N cold and warm timings with identity checking.

    Each cold repeat starts from an empty cache directory; warm repeats
    reuse the populated one. Minima are the noise-robust estimator —
    scheduler spikes only ever slow a run down.
    """
    cold_s = float("inf")
    warm_s = float("inf")
    cold_result = warm_result = None
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "cache"
        for _ in range(cold_repeats):
            for entry in cache_dir.glob("*.json") if cache_dir.is_dir() else ():
                entry.unlink()
            elapsed, cold_result = _timed_run(cache_dir)
            cold_s = min(cold_s, elapsed)
        for _ in range(warm_repeats):
            elapsed, warm_result = _timed_run(cache_dir)
            warm_s = min(warm_s, elapsed)
    assert cold_result is not None and warm_result is not None
    return {
        "target": str(_TARGET.relative_to(REPO_ROOT)),
        "files_checked": cold_result.files_checked,
        "rules_run": len(cold_result.rules_run),
        "findings": len(cold_result.findings),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "hash_s": round(_hashing_seconds(), 4),
        "speedup": round(cold_s / warm_s, 1),
        "identical": _fingerprint(cold_result) == _fingerprint(warm_result),
    }


def check_cache(fresh: dict, retries: int = 2) -> list[str]:
    """Gate failures: warm/cold mismatch, or speedup below the floor.

    A below-floor speedup on shared hardware can be a noise spike in the
    (small) warm number, so it is re-measured before failing; identity
    mismatches are never noise and fail immediately.
    """
    if not fresh["identical"]:
        return ["cached warm run returned different findings than the cold run"]
    best = fresh["speedup"]
    for attempt in range(retries):
        if best >= SPEEDUP_FLOOR:
            break
        retry = _measure()
        if not retry["identical"]:
            return ["cached warm run returned different findings than the cold run"]
        print(
            f"speedup {best:.1f}x below floor, re-measured at "
            f"{retry['speedup']:.1f}x (retry {attempt + 1})"
        )
        best = max(best, retry["speedup"])
    if best < SPEEDUP_FLOOR:
        return [
            f"cache speedup {best:.1f}x is below the {SPEEDUP_FLOOR:.0f}x floor "
            f"(cold {fresh['cold_s']}s vs warm {fresh['warm_s']}s)"
        ]
    return []


def _run_check(baseline: dict) -> int:
    from conftest import report_failures

    fresh = _measure()
    print(f"{'metric':<16}{'baseline':>12}{'fresh':>12}")
    for name in ("cold_s", "warm_s", "speedup"):
        print(f"{name:<16}{baseline[name]:>12}{fresh[name]:>12}")
    print(f"hashing floor: {fresh['hash_s']}s of the warm run is file hashing")
    return report_failures(check_cache(fresh), "analysis cache gate")


def _regenerate() -> int:
    from conftest import machine_info, write_baseline

    measured = _measure(cold_repeats=3, warm_repeats=7)
    payload = {
        "pr": 6,
        "speedup_floor": SPEEDUP_FLOOR,
        "machine": machine_info(),
        **measured,
    }
    write_baseline("BENCH_ANALYSIS.json", payload)
    print(
        f"cold {payload['cold_s']}s, warm {payload['warm_s']}s "
        f"({payload['speedup']}x, floor {SPEEDUP_FLOOR:.0f}x), "
        f"identical={payload['identical']}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    from conftest import gate_main

    return gate_main(
        argv,
        description=__doc__,
        check_help="re-measure and fail if the cache speedup drops below the floor",
        check=_run_check,
        regenerate=_regenerate,
    )


if __name__ == "__main__":
    raise SystemExit(main())
