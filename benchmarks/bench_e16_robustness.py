"""Benchmark + reproduction check for E16 (robustness to outlier voters)."""

from __future__ import annotations

from repro.experiments import e16_robustness


def test_e16_robustness(benchmark):
    (table,) = benchmark(e16_robustness.run, seed=0, n=20, honest=10, trials=6)
    below_breakdown = [
        row for row in table.rows if row["adversarial_fraction"] < 0.45
    ]
    assert below_breakdown
    # the §1 claim: below the breakdown point the median tracks the truth
    # strictly better than the mean-based Borda
    assert all(row["median_error"] <= 0.1 for row in below_breakdown)
    worst_gap = max(
        row["borda_error"] - row["median_error"] for row in below_breakdown
    )
    assert worst_gap >= 0
